"""SIGSTOP/SIGCONT/SIGKILL semantics — the mechanism ALPS relies on."""

import pytest

from repro.errors import KernelError, NoSuchProcessError
from repro.kernel.actions import Compute, Sleep
from repro.kernel.behaviors import GeneratorBehavior
from repro.kernel.kconfig import KernelConfig
from repro.kernel.kernel import Kernel
from repro.kernel.process import ProcState
from repro.kernel.signals import SIGCONT, SIGKILL, SIGSTOP, signal_name
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.workloads.spinner import spinner_behavior


def make_kernel():
    eng = Engine(seed=0)
    return eng, Kernel(eng, KernelConfig(ctx_switch_us=0))


def test_signal_names():
    assert signal_name(SIGSTOP) == "SIGSTOP"
    assert signal_name(SIGCONT) == "SIGCONT"
    assert signal_name(SIGKILL) == "SIGKILL"
    assert signal_name(1) == "SIG#1"


def test_unsupported_signal_raises():
    eng, k = make_kernel()
    p = k.spawn("a", spinner_behavior())
    with pytest.raises(KernelError):
        k.kill(p.pid, 1)


def test_signal_to_dead_pid_raises():
    eng, k = make_kernel()
    with pytest.raises(NoSuchProcessError):
        k.kill(999, SIGSTOP)


def test_stopped_process_stops_consuming():
    eng, k = make_kernel()
    a = k.spawn("a", spinner_behavior())
    b = k.spawn("b", spinner_behavior())
    eng.at(sec(1), lambda e: k.kill(a.pid, SIGSTOP))
    eng.run_until(sec(2))
    usage_at_stop = k.getrusage(a.pid)
    eng.run_until(sec(3))
    assert k.getrusage(a.pid) == usage_at_stop
    # b picks up the whole CPU after the stop.
    assert k.getrusage(b.pid) == pytest.approx(sec(2), rel=0.3)


def test_sigcont_resumes_consumption():
    eng, k = make_kernel()
    a = k.spawn("a", spinner_behavior())
    eng.at(ms(100), lambda e: k.kill(a.pid, SIGSTOP))
    eng.at(ms(300), lambda e: k.kill(a.pid, SIGCONT))
    eng.run_until(ms(500))
    # Ran 0-100 and 300-500 => ~300 ms.
    assert k.getrusage(a.pid) == pytest.approx(ms(300), abs=ms(2))


def test_stop_is_idempotent_and_cont_without_stop_is_noop():
    eng, k = make_kernel()
    a = k.spawn("a", spinner_behavior())
    eng.run_until(ms(10))
    k.kill(a.pid, SIGCONT)  # not stopped: no-op
    k.kill(a.pid, SIGSTOP)
    k.kill(a.pid, SIGSTOP)  # idempotent
    assert a.stopped
    k.kill(a.pid, SIGCONT)
    assert not a.stopped
    eng.run_until(ms(20))
    assert a.state in (ProcState.RUNNING, ProcState.RUNNABLE)


def test_stop_while_sleeping_keeps_sleeping_then_parks():
    eng, k = make_kernel()

    def gen(proc, kapi):
        yield Compute(ms(5))
        yield Sleep(ms(50), channel="io")
        while True:
            yield Compute(ms(60))

    p = k.spawn("io", GeneratorBehavior(gen))
    eng.at(ms(20), lambda e: k.kill(p.pid, SIGSTOP))
    eng.run_until(ms(40))
    assert p.state is ProcState.SLEEPING  # still blocked, also stopped
    assert p.stopped
    eng.run_until(ms(100))
    # Sleep expired while stopped: parked runnable-but-stopped, no CPU.
    assert p.state is ProcState.RUNNABLE
    assert p.stopped
    assert k.getrusage(p.pid) == ms(5)
    k.kill(p.pid, SIGCONT)
    eng.run_until(ms(160))
    assert k.getrusage(p.pid) == pytest.approx(ms(65), abs=ms(1))


def test_stopping_the_running_process_preempts_it():
    eng, k = make_kernel()
    a = k.spawn("a", spinner_behavior())
    b = k.spawn("b", spinner_behavior(), start_delay=ms(500))
    eng.run_until(ms(100))
    assert a.state is ProcState.RUNNING
    k.kill(a.pid, SIGSTOP)
    assert a.state is ProcState.RUNNABLE and a.stopped
    eng.run_until(sec(1))
    assert k.getrusage(a.pid) == pytest.approx(ms(100), abs=ms(1))


def test_sigkill_terminates():
    eng, k = make_kernel()
    a = k.spawn("a", spinner_behavior())
    eng.run_until(ms(10))
    k.kill(a.pid, SIGKILL)
    assert a.state is ProcState.ZOMBIE
    assert a.exit_status == -SIGKILL


def test_sigkill_sleeping_process_cancels_timer():
    eng, k = make_kernel()

    def gen(proc, kapi):
        yield Sleep(ms(100))
        raise AssertionError("should never resume")

    p = k.spawn("doomed", GeneratorBehavior(gen))
    eng.at(ms(10), lambda e: k.kill(p.pid, SIGKILL))
    eng.run_until(ms(500))
    assert p.state is ProcState.ZOMBIE


def test_resumed_process_gets_sleep_decay_priority_boost():
    """A long-stopped process returns with decayed estcpu (updatepri)."""
    eng, k = make_kernel()
    a = k.spawn("a", spinner_behavior())
    b = k.spawn("b", spinner_behavior())
    eng.run_until(sec(5))
    est_before = a.estcpu
    k.kill(a.pid, SIGSTOP)
    eng.run_until(sec(10))
    k.kill(a.pid, SIGCONT)
    assert a.estcpu < est_before
