"""Decay-usage scheduler behaviour: fairness, nice, interactivity."""

import pytest

from repro.kernel.actions import Compute, Sleep
from repro.kernel.behaviors import GeneratorBehavior
from repro.kernel.kconfig import KernelConfig
from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.workloads.spinner import spinner_behavior


def make_kernel(**kw):
    eng = Engine(seed=0)
    return eng, Kernel(eng, KernelConfig(ctx_switch_us=0, **kw))


def test_n_spinners_share_fairly():
    eng, k = make_kernel()
    procs = [k.spawn(f"p{i}", spinner_behavior()) for i in range(5)]
    eng.run_until(sec(20))
    usages = [k.getrusage(p.pid) for p in procs]
    mean = sum(usages) / len(usages)
    for u in usages:
        assert u == pytest.approx(mean, rel=0.10)


def test_rotation_granularity_is_subsecond():
    """Priority decay rotates equal spinners within tens of ms."""
    eng, k = make_kernel()
    k.spawn("a", spinner_behavior())
    k.spawn("b", spinner_behavior())
    eng.run_until(sec(5))
    # At least one switch per ~slice on average.
    assert k.context_switches >= 5_000_000 // k.cfg.slice_us


def test_niced_process_gets_less_cpu():
    eng, k = make_kernel()
    normal = k.spawn("normal", spinner_behavior(), nice=0)
    niced = k.spawn("niced", spinner_behavior(), nice=10)
    eng.run_until(sec(20))
    assert k.getrusage(niced.pid) < k.getrusage(normal.pid) * 0.8


def test_interactive_process_low_latency_under_load():
    """A mostly-sleeping process wakes promptly despite CPU hogs."""
    eng, k = make_kernel()
    for i in range(4):
        k.spawn(f"hog{i}", spinner_behavior())
    latencies = []

    def gen(proc, kapi):
        while True:
            yield Sleep(ms(50))
            due = kapi.now
            yield Compute(ms(1))
            latencies.append(kapi.now - due - ms(1))

    k.spawn("interactive", GeneratorBehavior(gen))
    eng.run_until(sec(10))
    assert latencies
    # Wakeup boost: dispatched immediately; only its own 1 ms compute
    # can be preempted mid-way occasionally.
    median = sorted(latencies)[len(latencies) // 2]
    assert median < ms(5)


def test_loadavg_tracks_runnable_count():
    eng, k = make_kernel()
    for i in range(6):
        k.spawn(f"p{i}", spinner_behavior())
    eng.run_until(sec(120))
    assert k.loadavg.value == pytest.approx(6.0, rel=0.15)


def test_estcpu_reaches_equilibrium_not_limit():
    """With two spinners, decay balances charging below the clamp."""
    eng, k = make_kernel()
    a = k.spawn("a", spinner_behavior())
    k.spawn("b", spinner_behavior())
    eng.run_until(sec(60))
    assert 0 < a.estcpu < k.cfg.estcpu_limit


def test_busy_accounting_consistent():
    eng, k = make_kernel()
    k.spawn("a", spinner_behavior())
    eng.run_until(sec(3))
    k._charge_current()
    assert k.total_busy_us == pytest.approx(sec(3), abs=ms(1))
