"""Generator-behavior adaptation."""

from repro.kernel.actions import Compute, Exit
from repro.kernel.behaviors import GeneratorBehavior, behavior


def test_generator_behavior_yields_then_exits():
    def gen(proc, kapi):
        yield Compute(10)
        yield Compute(20)

    b = GeneratorBehavior(gen)
    assert b.next_action(None, None) == Compute(10)
    assert b.next_action(None, None) == Compute(20)
    assert isinstance(b.next_action(None, None), Exit)


def test_behavior_decorator_makes_fresh_instances():
    @behavior
    def spin(proc, kapi):
        yield Compute(1)

    a, b = spin(), spin()
    assert a is not b
    assert a.next_action(None, None) == Compute(1)
    # Advancing a must not advance b.
    assert b.next_action(None, None) == Compute(1)


def test_generator_receives_proc_and_kapi():
    seen = {}

    def gen(proc, kapi):
        seen["proc"] = proc
        seen["kapi"] = kapi
        yield Compute(1)

    b = GeneratorBehavior(gen)
    b.next_action("PROC", "KAPI")
    assert seen == {"proc": "PROC", "kapi": "KAPI"}
