"""Property-based kernel invariants under randomized workloads.

Random mixes of compute/sleep behaviours and random signal injections
must never violate:

* conservation: total CPU charged ≤ elapsed time, and equals elapsed
  minus context-switch slivers when someone is always runnable;
* a stopped process never accumulates CPU while stopped;
* a sleeping process never accumulates CPU while asleep;
* the kernel's internal structures stay consistent (exactly one
  RUNNING process, on-runqueue set matches run queue contents).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.kernel.actions import Compute, Sleep
from repro.kernel.behaviors import GeneratorBehavior
from repro.kernel.kconfig import KernelConfig
from repro.kernel.kernel import Kernel
from repro.kernel.process import ProcState
from repro.kernel.signals import SIGCONT, SIGSTOP
from repro.sim.engine import Engine
from repro.units import ms, sec


def random_behavior(pattern: list[tuple[str, int]]) -> GeneratorBehavior:
    def run(proc, kapi):
        while True:
            for kind, dur in pattern:
                if kind == "c":
                    yield Compute(dur)
                else:
                    yield Sleep(dur)

    return GeneratorBehavior(run)


pattern_strategy = st.lists(
    st.tuples(
        st.sampled_from(["c", "s"]),
        st.integers(min_value=ms(1), max_value=ms(150)),
    ),
    min_size=1,
    max_size=4,
)


def _consistency(kernel: Kernel) -> None:
    running = [
        p for p in kernel.procs.values() if p.state is ProcState.RUNNING
    ]
    assert len(running) <= 1
    if running:
        assert running[0] is kernel.current
    for pid in kernel._on_runq:
        proc = kernel.procs[pid]
        assert proc.state is ProcState.RUNNABLE
        assert not proc.stopped


@given(
    patterns=st.lists(pattern_strategy, min_size=1, max_size=5),
    signal_plan=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),  # target index
            st.integers(min_value=ms(5), max_value=ms(900)),  # when
            st.booleans(),  # stop or cont
        ),
        max_size=8,
    ),
)
@settings(max_examples=30, deadline=None)
def test_conservation_and_consistency(patterns, signal_plan):
    eng = Engine(seed=1)
    kernel = Kernel(eng, KernelConfig(ctx_switch_us=0))
    procs = [
        kernel.spawn(f"p{i}", random_behavior(pattern))
        for i, pattern in enumerate(patterns)
    ]
    for idx, when, is_stop in signal_plan:
        target = procs[idx % len(procs)]
        signo = SIGSTOP if is_stop else SIGCONT
        eng.at(when, lambda e, t=target, s=signo: kernel.kill(t.pid, s))

    # Advance in steps, checking invariants at each.  A process stopped
    # at two consecutive checks with no signal scheduled in between was
    # stopped throughout, so its CPU must not have moved.
    signal_times = sorted(when for _idx, when, _s in signal_plan)

    def signals_in(lo: int, hi: int) -> bool:
        return any(lo < t <= hi for t in signal_times)

    stop_watch: dict[int, int] = {}
    for step in range(10):
        lo, hi = ms(100) * step, ms(100) * (step + 1)
        eng.run_until(hi)
        _consistency(kernel)
        for p in procs:
            if not p.alive:
                continue
            cpu = kernel.getrusage(p.pid)
            if p.pid in stop_watch and p.stopped and not signals_in(lo, hi):
                assert cpu == stop_watch[p.pid], "stopped process consumed CPU"
            if p.stopped:
                stop_watch[p.pid] = cpu
            else:
                stop_watch.pop(p.pid, None)

    total = sum(kernel.getrusage(p.pid) for p in procs if p.alive)
    assert total <= eng.now + 1


@given(n=st.integers(min_value=1, max_value=8), seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_all_spinner_mix_is_work_conserving(n, seed):
    from repro.workloads.spinner import spinner_behavior

    eng = Engine(seed=seed)
    kernel = Kernel(eng, KernelConfig(ctx_switch_us=0))
    procs = [kernel.spawn(f"p{i}", spinner_behavior()) for i in range(n)]
    eng.run_until(sec(2))
    kernel._charge_current()
    total = sum(kernel.getrusage(p.pid) for p in procs)
    assert abs(total - sec(2)) <= ms(1)
