"""Sleep, wakeup, and wait-channel semantics."""

import pytest

from repro.kernel.actions import Compute, Sleep, SleepOn
from repro.kernel.behaviors import GeneratorBehavior
from repro.kernel.kconfig import KernelConfig
from repro.kernel.kernel import Kernel
from repro.kernel.process import ProcState
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.workloads.spinner import spinner_behavior


def make_kernel():
    eng = Engine(seed=0)
    return eng, Kernel(eng, KernelConfig(ctx_switch_us=0))


def test_sleeping_process_consumes_no_cpu():
    eng, k = make_kernel()

    def gen(proc, kapi):
        yield Compute(ms(10))
        yield Sleep(ms(100))
        yield Compute(ms(10))

    p = k.spawn("sleeper", GeneratorBehavior(gen))
    eng.run_until(ms(50))
    assert p.state is ProcState.SLEEPING
    assert k.getrusage(p.pid) == ms(10)


def test_wait_channel_visible_while_sleeping():
    eng, k = make_kernel()

    def gen(proc, kapi):
        yield Compute(ms(1))
        yield Sleep(ms(100), channel="biowait")
        while True:
            yield Compute(ms(10))

    p = k.spawn("io", GeneratorBehavior(gen))
    eng.run_until(ms(20))
    assert k.wait_channel_of(p.pid) == "biowait"
    eng.run_until(ms(200))
    assert k.wait_channel_of(p.pid) is None


def test_sleep_timeout_resumes_on_schedule():
    eng, k = make_kernel()
    resumed = []

    def gen(proc, kapi):
        yield Sleep(ms(30))
        resumed.append(kapi.now)
        yield Compute(ms(1))

    k.spawn("timer", GeneratorBehavior(gen))
    eng.run_until(ms(100))
    assert resumed == [ms(30)]


def test_wakeup_rouses_channel_sleepers():
    eng, k = make_kernel()
    woken = []

    def gen(proc, kapi):
        yield SleepOn("queue")
        woken.append((proc.pid, kapi.now))
        yield Compute(ms(1))

    a = k.spawn("a", GeneratorBehavior(gen))
    b = k.spawn("b", GeneratorBehavior(gen))
    eng.at(ms(40), lambda e: k.wakeup("queue"))
    eng.run_until(ms(100))
    assert sorted(pid for pid, _t in woken) == sorted([a.pid, b.pid])
    assert all(t == ms(40) for _pid, t in woken)


def test_wakeup_one_rouses_single_sleeper_fifo():
    eng, k = make_kernel()
    woken = []

    def gen(proc, kapi):
        yield SleepOn("q1")
        woken.append(proc.pid)
        yield Compute(ms(1))

    a = k.spawn("a", GeneratorBehavior(gen))
    b = k.spawn("b", GeneratorBehavior(gen), start_delay=1)
    eng.at(ms(40), lambda e: k.wakeup_one("q1"))
    eng.run_until(ms(100))
    assert woken == [a.pid]
    assert b.state is ProcState.SLEEPING


def test_wakeup_one_on_empty_channel_is_false():
    eng, k = make_kernel()
    assert k.wakeup_one("nobody") is False
    assert k.wakeup("nobody") == 0


def test_woken_process_preempts_spinner_immediately():
    """The tsleep wakeup-priority boost: a waking process runs at once."""
    eng, k = make_kernel()
    latencies = []

    def gen(proc, kapi):
        while True:
            yield Sleep(ms(10))
            wake_due = kapi.now
            yield Compute(100)
            latencies.append(kapi.now - wake_due - 100)

    k.spawn("spin", spinner_behavior())
    k.spawn("waker", GeneratorBehavior(gen))
    eng.run_until(sec(2))
    assert latencies, "waker never ran"
    assert max(latencies) <= 50  # dispatched essentially immediately


def test_zero_length_sleep_yields_but_returns():
    eng, k = make_kernel()
    loops = []

    def gen(proc, kapi):
        for _ in range(3):
            yield Compute(ms(1))
            yield Sleep(0)
        loops.append(kapi.now)

    k.spawn("yielder", GeneratorBehavior(gen))
    eng.run_until(ms(100))
    assert loops  # completed all iterations
