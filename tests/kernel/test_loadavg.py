"""Load average EWMA."""

import pytest

from repro.kernel.kconfig import KernelConfig
from repro.kernel.loadavg import LoadAverage


def test_starts_at_zero():
    assert LoadAverage(KernelConfig()).value == 0.0


def test_converges_to_constant_input():
    la = LoadAverage(KernelConfig())
    for _ in range(500):
        la.sample(8)
    assert la.value == pytest.approx(8.0, rel=1e-3)


def test_monotone_response():
    la = LoadAverage(KernelConfig())
    previous = la.value
    for _ in range(10):
        la.sample(4)
        assert la.value > previous
        previous = la.value


def test_negative_sample_rejected():
    la = LoadAverage(KernelConfig())
    with pytest.raises(ValueError):
        la.sample(-1)
