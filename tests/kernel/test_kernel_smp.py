"""SMP extension: multi-CPU dispatch, preemption, and ALPS on SMP."""

import pytest

from repro.alps.config import AlpsConfig
from repro.kernel.actions import Compute, Sleep
from repro.kernel.behaviors import GeneratorBehavior
from repro.kernel.kconfig import KernelConfig
from repro.kernel.kernel import Kernel
from repro.kernel.process import ProcState
from repro.kernel.signals import SIGSTOP
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.spinner import spinner_behavior


def make_kernel(ncpus):
    eng = Engine(seed=0)
    return eng, Kernel(eng, KernelConfig(ncpus=ncpus, ctx_switch_us=0))


def test_two_cpus_run_two_processes_concurrently():
    eng, k = make_kernel(2)
    a = k.spawn("a", spinner_behavior())
    b = k.spawn("b", spinner_behavior())
    eng.run_until(sec(4))
    assert k.getrusage(a.pid) == pytest.approx(sec(4), abs=ms(1))
    assert k.getrusage(b.pid) == pytest.approx(sec(4), abs=ms(1))
    assert k.total_busy_us == pytest.approx(2 * sec(4), abs=ms(2))


def test_four_processes_share_two_cpus_fairly():
    eng, k = make_kernel(2)
    procs = [k.spawn(f"p{i}", spinner_behavior()) for i in range(4)]
    eng.run_until(sec(10))
    for p in procs:
        assert k.getrusage(p.pid) == pytest.approx(sec(5), rel=0.1)


def test_single_cpu_unchanged_by_refactor():
    eng, k = make_kernel(1)
    a = k.spawn("a", spinner_behavior())
    b = k.spawn("b", spinner_behavior())
    eng.run_until(sec(4))
    total = k.getrusage(a.pid) + k.getrusage(b.pid)
    assert total == pytest.approx(sec(4), abs=ms(1))


def test_stop_on_one_cpu_frees_it():
    eng, k = make_kernel(2)
    a = k.spawn("a", spinner_behavior())
    b = k.spawn("b", spinner_behavior())
    c = k.spawn("c", spinner_behavior())
    eng.run_until(sec(2))
    k.kill(a.pid, SIGSTOP)
    usage_a = k.getrusage(a.pid)
    eng.run_until(sec(6))
    assert k.getrusage(a.pid) == usage_a
    # b and c now own one CPU each.
    assert k.getrusage(b.pid) + k.getrusage(c.pid) == pytest.approx(
        2 * sec(6) - usage_a, rel=0.05
    )


def test_wakeup_fills_idle_cpu_without_preemption():
    eng, k = make_kernel(2)
    spin = k.spawn("spin", spinner_behavior())
    latencies = []

    def gen(proc, kapi):
        while True:
            yield Sleep(ms(20))
            due = kapi.now
            yield Compute(ms(1))
            latencies.append(kapi.now - due - ms(1))

    k.spawn("waker", GeneratorBehavior(gen))
    eng.run_until(sec(3))
    # The waker always finds the second CPU idle.
    assert spin.preemptions <= 2
    assert max(latencies) <= ms(2)


def test_running_processes_listing():
    eng, k = make_kernel(2)
    a = k.spawn("a", spinner_behavior())
    eng.run_until(ms(50))
    running = k.running_processes()
    assert running == [a]
    assert a.cpu_index == 0


def test_alps_on_smp_apportions_aggregate_capacity():
    """ALPS extension: proportions hold over 2 CPUs' joint capacity.

    Utilisation is deliberately NOT asserted near 100 %: when fewer
    eligible processes remain than CPUs near the end of a cycle, a CPU
    idles — the exact weakness of per-process proportional sharing on
    SMP that surplus fair scheduling (Chandra et al., cited by the
    paper) was designed to fix.
    """
    cw = build_controlled_workload(
        [1, 2, 3, 4],
        AlpsConfig(quantum_us=ms(10)),
        seed=0,
        kernel_config=KernelConfig(ncpus=2),
    )
    cw.engine.run_until(sec(30))
    usages = [cw.kernel.getrusage(w.pid) for w in cw.workers]
    total = sum(usages)
    assert 0.7 * 2 * sec(30) < total <= 2 * sec(30)
    for share, usage in zip([1, 2, 3, 4], usages):
        assert usage / total == pytest.approx(share / 10, abs=0.02)
