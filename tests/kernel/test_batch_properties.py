"""Property tests for the struct-of-arrays batch kernel core.

Three equivalences, each pinned with exact (``==``) comparisons, never
tolerances — the batch backend's byte-identity contract rests on the
array arithmetic reproducing the scalar arithmetic bit for bit:

* :func:`batched_decay` / :func:`batched_user_priority` over arbitrary
  estcpu/nice vectors equal the per-process scalar functions
  (:func:`decay_estcpu` / :func:`user_priority`) elementwise;
* :class:`ArrayRunQueue` (bitmap pick over flat buckets) is
  operation-for-operation indistinguishable from the linked-list
  :class:`RunQueue` under arbitrary insert/pop/remove scripts,
  including removes after a stale priority change;
* :meth:`SoaState.gather` → :meth:`SoaState.scatter` round-trips every
  scheduler-owned PCB field exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel.batch import (
    ArrayRunQueue,
    SoaState,
    batched_decay,
    batched_user_priority,
)
from repro.kernel.kconfig import DEFAULT_CONFIG
from repro.kernel.priorities import decay_estcpu, user_priority
from repro.kernel.process import Process, ProcState
from repro.kernel.runqueue import NQS, PPQ, RunQueue

CFG = DEFAULT_CONFIG

# estcpu values beyond the clamp limit included on purpose: the clamp
# lanes must agree too.
estcpus = st.floats(
    min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)
nices = st.integers(min_value=-20, max_value=20)
loads = st.floats(
    min_value=0.0, max_value=200.0, allow_nan=False, allow_infinity=False
)


def _proc(pid: int, priority: int = 50) -> Process:
    proc = Process(pid=pid, name=f"p{pid}", uid=0, nice=0, behavior=None)
    proc.priority = priority
    return proc


# ----------------------------------------------------------------------
# Vectorized arithmetic ≡ scalar arithmetic
# ----------------------------------------------------------------------
@given(
    rows=st.lists(st.tuples(estcpus, nices), min_size=1, max_size=50),
    load=loads,
)
@settings(max_examples=200, deadline=None)
def test_batched_decay_equals_scalar_decay_exactly(rows, load):
    est = np.array([e for e, _ in rows], dtype=np.float64)
    nice = np.array([n for _, n in rows], dtype=np.int64)
    batched = batched_decay(est, nice, load, CFG.estcpu_limit)
    for i, (e, n) in enumerate(rows):
        expected = decay_estcpu(CFG, e, n, load)
        assert batched[i] == expected, (
            f"row {i}: est={e!r} nice={n} load={load!r}: "
            f"batched={batched[i]!r} scalar={expected!r}"
        )


@given(rows=st.lists(st.tuples(estcpus, nices), min_size=1, max_size=50))
@settings(max_examples=200, deadline=None)
def test_batched_priority_equals_scalar_priority_exactly(rows):
    est = np.array([e for e, _ in rows], dtype=np.float64)
    nice = np.array([n for _, n in rows], dtype=np.int64)
    batched = batched_user_priority(CFG, est, nice)
    for i, (e, n) in enumerate(rows):
        expected = user_priority(CFG, e, n)
        assert batched[i] == expected
        assert isinstance(int(batched[i]), int)


@given(
    rows=st.lists(st.tuples(estcpus, nices), min_size=1, max_size=50),
    load=loads,
)
@settings(max_examples=100, deadline=None)
def test_decay_then_priority_composes_like_the_eager_loop(rows, load):
    """The exact composition the batch schedcpu pass performs."""
    est = np.array([e for e, _ in rows], dtype=np.float64)
    nice = np.array([n for _, n in rows], dtype=np.int64)
    new_est = batched_decay(est, nice, load, CFG.estcpu_limit)
    new_pri = batched_user_priority(CFG, new_est, nice)
    for i, (e, n) in enumerate(rows):
        scalar_est = decay_estcpu(CFG, e, n, load)
        assert new_est[i] == scalar_est
        assert new_pri[i] == user_priority(CFG, scalar_est, n)


# ----------------------------------------------------------------------
# ArrayRunQueue ≡ RunQueue
# ----------------------------------------------------------------------
# Operation alphabet: (op, argument)
#   insert      — new process at a priority
#   insert_head — new process prepended
#   pop         — pop_best from both, compare
#   remove      — remove the k-th live member (same in both)
#   retag       — change the k-th live member's priority *without*
#                 requeueing (models the stale-priority remove path)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, NQS * PPQ - 1)),
        st.tuples(st.just("insert_head"), st.integers(0, NQS * PPQ - 1)),
        st.tuples(st.just("pop"), st.just(0)),
        st.tuples(st.just("remove"), st.integers(0, 10_000)),
        st.tuples(
            st.just("retag"),
            st.tuples(st.integers(0, 10_000), st.integers(0, NQS * PPQ - 1)),
        ),
    ),
    min_size=1,
    max_size=80,
)


@given(ops=_ops)
@settings(max_examples=200, deadline=None)
def test_array_runqueue_matches_linked_list_runqueue(ops):
    reference = RunQueue()
    array = ArrayRunQueue()
    # Two mirror Process populations: queue membership mutates the
    # Process objects' bucket linkage, so each queue gets its own.
    ref_procs: dict[int, Process] = {}
    arr_procs: dict[int, Process] = {}
    live: list[int] = []  # insertion-ordered live pids
    next_pid = 1
    for op, arg in ops:
        if op in ("insert", "insert_head"):
            pid, pri = next_pid, arg
            next_pid += 1
            ref_procs[pid] = _proc(pid, pri)
            arr_procs[pid] = _proc(pid, pri)
            getattr(reference, op)(ref_procs[pid])
            getattr(array, op)(arr_procs[pid])
            live.append(pid)
        elif op == "pop":
            a = reference.pop_best()
            b = array.pop_best()
            assert (a is None) == (b is None)
            if a is not None:
                assert a.pid == b.pid and a.priority == b.priority
                live.remove(a.pid)
        elif op == "remove":
            if not live:
                continue
            pid = live[arg % len(live)]
            reference.remove(ref_procs[pid])
            array.remove(arr_procs[pid])
            live.remove(pid)
        else:  # retag
            idx, pri = arg
            if not live:
                continue
            pid = live[idx % len(live)]
            ref_procs[pid].priority = pri
            arr_procs[pid].priority = pri
        assert len(reference) == len(array)
        assert reference.best_priority() == array.best_priority()
    # Drain: the full remaining pick order must agree.
    while True:
        a = reference.pop_best()
        b = array.pop_best()
        assert (a is None) == (b is None)
        if a is None:
            break
        assert a.pid == b.pid


def test_array_runqueue_rejects_out_of_range_priority():
    queue = ArrayRunQueue()
    from repro.errors import KernelError

    with pytest.raises(KernelError):
        queue.insert(_proc(1, priority=NQS * PPQ))
    with pytest.raises(KernelError):
        queue.insert(_proc(2, priority=-1))
    with pytest.raises(KernelError):
        queue.remove(_proc(3, priority=5))  # never inserted


def test_array_runqueue_contains_and_compaction():
    queue = ArrayRunQueue()
    procs = [_proc(pid, priority=8) for pid in range(1, 101)]
    for proc in procs:
        queue.insert(proc)
    # Pop enough to trigger the dead-prefix compaction branch.
    for i in range(70):
        assert queue.pop_best() is procs[i]
    assert procs[69] not in queue
    assert procs[70] in queue
    assert len(queue) == 30
    assert [queue.pop_best().pid for _ in range(30)] == list(range(71, 101))


# ----------------------------------------------------------------------
# SoaState gather/scatter round trip
# ----------------------------------------------------------------------
_states = st.sampled_from(list(ProcState))
_pcb_rows = st.lists(
    st.tuples(
        estcpus,  # estcpu
        st.integers(0, 127),  # priority
        nices,  # nice
        st.integers(0, 1000),  # slptime
        st.integers(0, 10**9),  # cpu_time
        st.integers(0, 10**9),  # run_start
        st.integers(0, 10**6),  # pending_burst_us
        _states,
        st.booleans(),  # stopped
        st.one_of(st.none(), st.integers(0, 127)),  # boost_priority
    ),
    min_size=1,
    max_size=40,
)


def _populate(proc: Process, row) -> None:
    (
        proc.estcpu,
        proc.priority,
        proc.nice,
        proc.slptime,
        proc.cpu_time,
        proc.run_start,
        proc.pending_burst_us,
        proc.state,
        proc.stopped,
        proc.boost_priority,
    ) = row


@given(rows=_pcb_rows)
@settings(max_examples=200, deadline=None)
def test_soa_gather_scatter_round_trips_exactly(rows):
    originals = []
    blanks = []
    for pid, row in enumerate(rows, start=1):
        proc = _proc(pid)
        _populate(proc, row)
        if proc.state is ProcState.SLEEPING:
            proc.wait_channel = f"chan{pid}"
        originals.append(proc)
        blanks.append(_proc(pid))
    soa = SoaState.gather(originals, on_runq={1})
    assert len(soa) == len(rows)
    assert soa.slot_of == {p.pid: i for i, p in enumerate(originals)}
    soa.scatter(blanks)
    for orig, blank in zip(originals, blanks):
        assert blank.estcpu == orig.estcpu
        assert blank.priority == orig.priority
        assert blank.nice == orig.nice
        assert blank.slptime == orig.slptime
        assert blank.cpu_time == orig.cpu_time
        assert blank.run_start == orig.run_start
        assert blank.pending_burst_us == orig.pending_burst_us
        assert blank.state is orig.state
        assert blank.stopped == orig.stopped
        assert blank.boost_priority == orig.boost_priority


def test_soa_gather_captures_masks_and_deadlines():
    from repro.sim.engine import Engine
    from repro.kernel.batch import NO_VALUE, BatchKernel

    engine = Engine(seed=0)
    kernel = BatchKernel(engine)
    from repro.workloads.spinner import spinner_behavior

    a = kernel.spawn("a", spinner_behavior())
    b = kernel.spawn("b", spinner_behavior())
    engine.run_until(50_000)
    soa = kernel.soa_snapshot()
    by_pid = {int(pid): i for i, pid in enumerate(soa.pids)}
    assert set(by_pid) >= {a.pid, b.pid}
    # Run-queue membership mask mirrors the kernel's on-runq set.
    for pid, slot in by_pid.items():
        assert bool(soa.on_runq[slot]) == (pid in kernel._on_runq)
    # Exactly one spinner is on CPU; its burst deadline is armed.
    running = [
        i for i in range(len(soa)) if soa.state[i] == 1  # RUNNING code
    ]
    assert len(running) == 1
    assert soa.deadline[running[0]] != NO_VALUE


def test_soa_scatter_rejects_mismatched_rows():
    from repro.errors import KernelError

    soa = SoaState.gather([_proc(1), _proc(2)])
    with pytest.raises(KernelError, match="row mismatch"):
        soa.scatter([_proc(1)])
    with pytest.raises(KernelError, match="pid mismatch"):
        soa.scatter([_proc(1), _proc(3)])
