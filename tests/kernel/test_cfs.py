"""CFS-like kernel policy."""

import numpy as np
import pytest

from repro.alps.config import AlpsConfig
from repro.kernel.actions import Compute, Sleep
from repro.kernel.behaviors import GeneratorBehavior
from repro.kernel.cfs import CfsKernel, CfsRunQueue, nice_weight
from repro.kernel.kconfig import KernelConfig
from repro.kernel.process import Process
from repro.kernel.signals import SIGCONT, SIGSTOP
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.spinner import spinner_behavior


def make_kernel(**kw):
    eng = Engine(seed=0)
    return eng, CfsKernel(eng, KernelConfig(ctx_switch_us=0, **kw))


def _proc(pid, vruntime):
    p = Process(pid=pid, name=f"p{pid}", uid=0, nice=0, behavior=None)
    p.vruntime = vruntime
    return p


def test_nice_weight_ladder():
    assert nice_weight(0) == 1024
    assert nice_weight(-5) / nice_weight(0) == pytest.approx(1.25**5)
    assert nice_weight(5) < nice_weight(0)


def test_runqueue_orders_by_vruntime():
    rq = CfsRunQueue()
    a, b, c = _proc(1, 30.0), _proc(2, 10.0), _proc(3, 20.0)
    for p in (a, b, c):
        rq.insert(p)
    assert rq.min_vruntime() == 10.0
    assert [rq.pop_best().pid for _ in range(3)] == [2, 3, 1]
    assert rq.pop_best() is None
    assert rq.min_vruntime() is None


def test_runqueue_remove():
    rq = CfsRunQueue()
    a, b = _proc(1, 1.0), _proc(2, 2.0)
    rq.insert(a)
    rq.insert(b)
    rq.remove(a)
    assert len(rq) == 1
    assert a not in rq and b in rq


def test_equal_spinners_share_exactly():
    eng, k = make_kernel()
    procs = [k.spawn(f"p{i}", spinner_behavior()) for i in range(4)]
    eng.run_until(sec(8))
    for p in procs:
        assert k.getrusage(p.pid) == pytest.approx(sec(2), rel=0.03)


def test_nice_weights_shape_allocation():
    eng, k = make_kernel()
    a = k.spawn("a", spinner_behavior(), nice=0)
    b = k.spawn("b", spinner_behavior(), nice=5)
    eng.run_until(sec(20))
    ratio = k.getrusage(a.pid) / k.getrusage(b.pid)
    assert ratio == pytest.approx(1.25**5, rel=0.05)


def test_sleeper_gets_bounded_credit():
    """A long sleeper must not starve everyone when it wakes."""
    eng, k = make_kernel()
    spin = k.spawn("spin", spinner_behavior())

    def gen(proc, kapi):
        yield Sleep(sec(5))
        while True:
            yield Compute(sec(1))

    sleeper = k.spawn("sleeper", GeneratorBehavior(gen))
    eng.run_until(sec(8))
    # After waking at t=5 s the sleeper competes fairly: it cannot have
    # grabbed much more than half of the last 3 s.
    assert k.getrusage(sleeper.pid) < sec(2)


def test_sigstop_sigcont_work_on_cfs():
    eng, k = make_kernel()
    a = k.spawn("a", spinner_behavior())
    b = k.spawn("b", spinner_behavior())
    eng.at(sec(1), lambda e: k.kill(a.pid, SIGSTOP))
    eng.at(sec(2), lambda e: k.kill(a.pid, SIGCONT))
    eng.run_until(sec(3))
    # a missed the middle second, and does not get it back (its
    # vruntime is re-placed on resume).
    assert k.getrusage(a.pid) == pytest.approx(sec(1), rel=0.15)


def test_alps_accuracy_on_cfs():
    """Portability: the unmodified ALPS agent holds proportions on a
    completely different kernel policy."""
    cw = build_controlled_workload(
        [1, 2, 3],
        AlpsConfig(quantum_us=ms(10)),
        seed=0,
        kernel_factory=CfsKernel,
    )
    cw.engine.run_until(sec(20))
    from repro.metrics.accuracy import per_subject_fractions

    fr = per_subject_fractions(cw.agent.cycle_log, skip=5)
    assert fr[0] == pytest.approx(1 / 6, abs=0.02)
    assert fr[1] == pytest.approx(2 / 6, abs=0.02)
    assert fr[2] == pytest.approx(3 / 6, abs=0.02)
