"""Strict-vs-lazy estcpu decay equivalence (property test).

The kernel defers per-second slptime/decay bookkeeping for parked
(sleeping/stopped) processes and replays it on wakeup, 4.4BSD
``updatepri`` style.  ``KernelConfig(strict=True)`` keeps the original
eager loop.  For any workload the two must be indistinguishable: same
event stream, and — after ``flush_lazy_decay`` materialises deferred
state — bit-identical per-process estcpu, slptime, and priority at any
instant.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.kernel.actions import Compute, Sleep
from repro.kernel.behaviors import GeneratorBehavior
from repro.kernel.kconfig import KernelConfig
from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine
from repro.units import ms, sec

#: Per-process scripts of (compute, sleep) phases in 10 ms units.
#: Sleeps reach past 1 s so the 4.4BSD wakeup-decay (slptime >= 1 s)
#: path runs, and computes are long enough to accrue estcpu across
#: schedcpu passes.
scripts = st.lists(
    st.lists(
        st.tuples(st.integers(0, 40), st.integers(0, 250)),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=4,
)


def _scripted(phases):
    def factory(proc, kapi):
        for comp_10ms, sleep_10ms in phases:
            if comp_10ms:
                yield Compute(comp_10ms * ms(10))
            if sleep_10ms:
                yield Sleep(sleep_10ms * ms(10))
        while True:  # settle into a spinner so the run stays busy
            yield Compute(ms(50))

    return GeneratorBehavior(factory)


def _build(strict: bool, scripts_):
    engine = Engine(seed=0)
    kernel = Kernel(engine, KernelConfig(strict=strict))
    for i, phases in enumerate(scripts_):
        kernel.spawn(f"p{i}", _scripted(phases))
    return engine, kernel


@given(scripts_=scripts)
@settings(max_examples=30, deadline=None)
def test_lazy_decay_matches_eager_at_every_checkpoint(scripts_):
    eager_engine, eager_kernel = _build(True, scripts_)
    lazy_engine, lazy_kernel = _build(False, scripts_)
    assert eager_kernel._lazy is False and lazy_kernel._lazy is True

    for checkpoint in range(1, 9):
        horizon = checkpoint * sec(1)
        eager_engine.run_until(horizon)
        lazy_engine.run_until(horizon)
        # Same schedule: the event streams must not diverge.
        assert (
            lazy_engine.events_processed == eager_engine.events_processed
        ), f"event streams diverged by t={horizon}"
        # Same per-process scheduler state once deferred bookkeeping is
        # materialised (flush is idempotent and schedule-invisible).
        lazy_kernel.flush_lazy_decay()
        for pid, eager_proc in eager_kernel.procs.items():
            lazy_proc = lazy_kernel.procs[pid]
            assert lazy_proc.state is eager_proc.state, (pid, horizon)
            assert lazy_proc.estcpu == eager_proc.estcpu, (pid, horizon)
            assert lazy_proc.slptime == eager_proc.slptime, (pid, horizon)
            assert lazy_proc.priority == eager_proc.priority, (pid, horizon)
            assert lazy_proc.cpu_time == eager_proc.cpu_time, (pid, horizon)


@given(scripts_=scripts)
@settings(max_examples=20, deadline=None)
def test_slptime_of_materialises_on_read(scripts_):
    """Reading slptime through the public accessor must already include
    any deferred accrual — callers never see stale parked state."""
    lazy_engine, lazy_kernel = _build(False, scripts_)
    eager_engine, eager_kernel = _build(True, scripts_)
    lazy_engine.run_until(sec(5))
    eager_engine.run_until(sec(5))
    for pid in eager_kernel.procs:
        assert lazy_kernel.slptime_of(pid) == eager_kernel.slptime_of(pid)
