"""Failure semantics: behaviors that misbehave.

The simulator's contract is fail-fast: a behavior raising an exception
propagates out of the run loop (nothing is swallowed), and structural
misuse (unknown action types, action storms) raises `KernelError` with
a pointed message.
"""

import pytest

from repro.errors import KernelError
from repro.kernel.actions import Compute
from repro.kernel.behaviors import GeneratorBehavior
from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.workloads.spinner import spinner_behavior


class Boom(RuntimeError):
    pass


def test_behavior_exception_propagates():
    eng = Engine(seed=0)
    k = Kernel(eng)

    def gen(proc, kapi):
        yield Compute(ms(5))
        raise Boom("workload bug")

    k.spawn("bad", GeneratorBehavior(gen))
    with pytest.raises(Boom, match="workload bug"):
        eng.run_until(sec(1))


def test_unknown_action_rejected():
    eng = Engine(seed=0)
    k = Kernel(eng)

    class WeirdBehavior:
        def next_action(self, proc, kapi):
            return "not-an-action"

    k.spawn("weird", WeirdBehavior())
    with pytest.raises(KernelError, match="unknown action"):
        eng.run_until(sec(1))


def test_other_processes_unharmed_until_failure():
    """A deterministic failure at t=5 ms still lets earlier events run."""
    eng = Engine(seed=0)
    k = Kernel(eng)
    good = k.spawn("good", spinner_behavior())

    def gen(proc, kapi):
        yield Compute(ms(5))
        raise Boom()

    k.spawn("bad", GeneratorBehavior(gen), start_delay=ms(100))
    eng.run_until(ms(90))  # before the bad process even starts
    assert k.getrusage(good.pid) > 0
    with pytest.raises(Boom):
        eng.run_until(sec(1))
