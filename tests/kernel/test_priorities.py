"""BSD priority/decay arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.kconfig import KernelConfig
from repro.kernel.priorities import (
    charge_estcpu,
    decay_estcpu,
    decay_factor,
    user_priority,
    wakeup_decay,
)

CFG = KernelConfig()


def test_base_priority_is_puser():
    assert user_priority(CFG, 0.0, 0) == CFG.puser


def test_priority_formula():
    # PUSER + estcpu/4 + 2*nice
    assert user_priority(CFG, 40.0, 0) == CFG.puser + 10
    assert user_priority(CFG, 40.0, 5) == CFG.puser + 10 + 10


def test_priority_clamped_to_maxpri():
    assert user_priority(CFG, 1e9, 20) == CFG.maxpri


def test_negative_nice_improves_priority():
    assert user_priority(CFG, 0.0, -10) < CFG.puser


def test_priority_never_negative():
    assert user_priority(CFG, 0.0, -1000) == 0


def test_decay_factor_shape():
    assert decay_factor(0) == 0.0
    assert decay_factor(1) == pytest.approx(2 / 3)
    # Higher load -> slower forgetting.
    assert decay_factor(10) > decay_factor(1)
    assert decay_factor(1000) < 1.0


def test_decay_factor_negative_load_raises():
    with pytest.raises(ValueError):
        decay_factor(-1)


def test_decay_estcpu_applies_filter_plus_nice():
    out = decay_estcpu(CFG, 100.0, 0, load=1.0)
    assert out == pytest.approx(100.0 * 2 / 3)
    out_nice = decay_estcpu(CFG, 100.0, 3, load=1.0)
    assert out_nice == pytest.approx(100.0 * 2 / 3 + 3)


def test_decay_estcpu_clamps():
    assert decay_estcpu(CFG, 1e9, 0, load=100.0) == CFG.estcpu_limit
    assert decay_estcpu(CFG, 0.0, -5, load=0.0) == 0.0


def test_charge_estcpu_one_per_tick():
    assert charge_estcpu(CFG, 0.0, CFG.tick_us) == pytest.approx(1.0)
    assert charge_estcpu(CFG, 2.0, 5 * CFG.tick_us) == pytest.approx(7.0)


def test_charge_estcpu_clamped():
    assert charge_estcpu(CFG, CFG.estcpu_limit, CFG.tick_us) == CFG.estcpu_limit


def test_wakeup_decay_reduces_usage():
    after = wakeup_decay(CFG, 100.0, 0, load=1.0, slept_seconds=3)
    assert after == pytest.approx(100.0 * (2 / 3) ** 3)


def test_wakeup_decay_long_sleep_converges():
    # Cap prevents pathological loops; value approaches nice-fixed-point.
    after = wakeup_decay(CFG, 300.0, 0, load=1.0, slept_seconds=10_000)
    assert after < 1e-3


@given(
    st.floats(min_value=0, max_value=300),
    st.floats(min_value=0, max_value=200),
)
def test_decay_is_contraction(estcpu, load):
    """Repeated decay with nice=0 never increases estcpu."""
    out = decay_estcpu(CFG, estcpu, 0, load)
    assert 0.0 <= out <= max(estcpu, 0.0) + 1e-9
