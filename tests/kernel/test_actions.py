"""Action validation."""

import pytest

from repro.errors import KernelError
from repro.kernel.actions import Compute, Exit, Sleep, SleepOn


def test_compute_rejects_negative():
    with pytest.raises(KernelError):
        Compute(-1)


def test_sleep_rejects_negative():
    with pytest.raises(KernelError):
        Sleep(-5)


def test_sleep_default_channel():
    assert Sleep(10).channel == "timer"


def test_sleepon_channel():
    assert SleepOn("disk").channel == "disk"


def test_exit_default_status():
    assert Exit().status == 0
