"""View/array coherence tests for the resident kernel backend.

:class:`~repro.kernel.resident.ResidentProcess` PCBs are *views*: the
scheduler-owned fields live in :class:`~repro.kernel.resident.
ResidentStore` columns and the PCB properties read and write the row
directly.  The whole backend rests on two claims, pinned here:

* **mutual observation** — interleaved writes through the view
  properties and direct mutations of the store (``array.array``
  indexing *and* zero-copy numpy views) observe each other exactly,
  with no shadow copy to go stale (Hypothesis, arbitrary interleaved
  scripts);
* **fresh-view equivalence** — a freshly attached view PCB matches a
  freshly constructed plain :class:`Process` field by field, since
  :meth:`ResidentProcess.attach` bypasses the dataclass ``__init__``
  and relies on the zeroed row for the array-backed defaults.

Plus the fault-injection seam: :class:`~repro.faults.injector.
FaultyKernelAPI` must *not* forward ``measure_many``, so a faulted
resident run takes the agent's classic per-pid measurement path and
replays the identical per-call fault RNG draw sequence as every other
backend.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel.process import Process, ProcState
from repro.kernel.resident import (
    ResidentProcess,
    ResidentStore,
)

# The array-backed fields, each with (value strategy, store column).
# ``wait_channel`` is handled separately (list column + has_channel
# mirror); boolean/optional/enum fields encode through the property.
_FIELD_COLUMNS = {
    "estcpu": "estcpu",
    "priority": "priority",
    "nice": "nice",
    "slptime": "slptime",
    "cpu_time": "cpu_time",
    "run_start": "run_start",
    "pending_burst_us": "pending_burst",
}

_FIELD_VALUES = {
    "estcpu": st.floats(
        min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    "priority": st.integers(0, 127),
    "nice": st.integers(-20, 20),
    "slptime": st.integers(0, 10**6),
    "cpu_time": st.integers(0, 10**12),
    "run_start": st.integers(0, 10**12),
    "pending_burst_us": st.integers(0, 10**9),
}

# Operation alphabet: write a field through the view property, write
# the same column through array.array indexing, or write it through a
# zero-copy numpy view.  All three routes target the same buffer.
_ops = st.lists(
    st.tuples(
        st.sampled_from(["prop", "array", "npview"]),
        st.integers(0, 10_000),  # row selector (mod population)
        st.sampled_from(sorted(_FIELD_COLUMNS)),
        st.integers(0, 10_000),  # value selector (drawn per field below)
    ),
    min_size=1,
    max_size=60,
)


def _attach_n(store: ResidentStore, n: int) -> list[ResidentProcess]:
    return [
        ResidentProcess.attach(
            store, pid=pid, name=f"p{pid}", uid=0, nice=0, behavior=None
        )
        for pid in range(1, n + 1)
    ]


@given(n=st.integers(1, 8), ops=_ops, data=st.data())
@settings(max_examples=200, deadline=None)
def test_view_and_array_mutations_observe_each_other(n, ops, data):
    """Arbitrary interleavings of property / array / numpy-view writes
    keep all three read routes in exact agreement with a shadow model."""
    store = ResidentStore(capacity=4)  # small so scripts cross a _grow
    procs = _attach_n(store, n)
    model = {field: [0] * n for field in _FIELD_COLUMNS}
    model["estcpu"] = [0.0] * n
    for route, row_sel, field, _ in ops:
        row = row_sel % n
        value = data.draw(_FIELD_VALUES[field], label=f"{field} value")
        column = _FIELD_COLUMNS[field]
        if route == "prop":
            setattr(procs[row], field, value)
        elif route == "array":
            getattr(store, column)[row] = value
        else:  # npview — fresh per write; grow replaces buffers
            store.np_view(column)[row] = value
        if field == "estcpu":
            # float64 round trip is exact for all three routes
            model[field][row] = float(np.float64(value))
        else:
            model[field][row] = value
        # Every route sees every other route's writes, exactly.
        for i, proc in enumerate(procs):
            expected = model[field][i]
            assert getattr(proc, field) == expected
            assert getattr(store, column)[i] == expected
            assert store.np_view(column)[i] == expected


@given(n=st.integers(1, 6), data=st.data())
@settings(max_examples=100, deadline=None)
def test_encoded_fields_round_trip_through_view_and_store(n, data):
    """state/stopped/boost_priority/wait_channel encode into array
    columns through the property; direct column writes decode back."""
    from repro.kernel.batch import NO_VALUE, STATE_CODES

    store = ResidentStore(capacity=2)
    procs = _attach_n(store, n)
    for _ in range(20):
        row = data.draw(st.integers(0, n - 1), label="row")
        proc = procs[row]
        state = data.draw(st.sampled_from(list(ProcState)), label="state")
        proc.state = state
        assert store.state[row] == STATE_CODES[state]
        assert proc.state is state
        stopped = data.draw(st.booleans(), label="stopped")
        proc.stopped = stopped
        assert store.stopped[row] == (1 if stopped else 0)
        assert proc.stopped is stopped
        boost = data.draw(
            st.one_of(st.none(), st.integers(0, 127)), label="boost"
        )
        proc.boost_priority = boost
        assert store.boost[row] == (NO_VALUE if boost is None else boost)
        assert proc.boost_priority == boost
        chan = data.draw(
            st.one_of(st.none(), st.just("chan")), label="channel"
        )
        proc.wait_channel = chan
        assert store.wait_channel[row] == chan
        assert store.has_channel[row] == (0 if chan is None else 1)
        assert proc.wait_channel == chan
        # Direct store writes are visible through the property too.
        store.boost[row] = NO_VALUE
        assert proc.boost_priority is None


def test_fresh_view_matches_fresh_plain_process_field_by_field():
    """attach() bypasses the dataclass __init__; the zeroed row must
    reproduce every Process field default exactly."""
    store = ResidentStore()
    view = ResidentProcess.attach(
        store, pid=7, name="v", uid=3, nice=-4, behavior=None
    )
    plain = Process(pid=7, name="v", uid=3, nice=-4, behavior=None)
    for f in dataclass_fields(Process):
        got, want = getattr(view, f.name), getattr(plain, f.name)
        assert got == want, f"{f.name}: view={got!r} plain={want!r}"
        assert type(got) is type(want), (
            f"{f.name}: view type {type(got)} != plain type {type(want)}"
        )
    assert view.alive and plain.alive
    assert view.runnable == plain.runnable


def test_store_grow_preserves_rows_and_refreshes_views():
    store = ResidentStore(capacity=2)
    procs = _attach_n(store, 2)
    procs[0].estcpu = 1.5
    procs[1].priority = 60
    stale = store.np_view("estcpu")
    _attach_n_more = ResidentProcess.attach(
        store, pid=99, name="g", uid=0, nice=0, behavior=None
    )
    assert store.capacity == 4  # grew
    # Values survived the buffer replacement...
    assert procs[0].estcpu == 1.5
    assert procs[1].priority == 60
    assert _attach_n_more.estcpu == 0.0
    # ...and a fresh view sees them; the pre-grow view is stale by
    # design (it aliases the replaced buffer).
    assert store.np_view("estcpu")[0] == 1.5
    assert stale.base is not None  # still a view of the old buffer


def test_faulty_kapi_hides_measure_many_from_the_agent():
    """The agent feature-tests ``measure_many`` with getattr; the fault
    wrapper must not forward it, so faulted resident runs take the
    classic per-pid path (per-call fault RNG draw order unchanged)."""
    from repro.faults.injector import FaultyKernelAPI
    from repro.kernel import KernelConfig, make_kernel
    from repro.sim.engine import Engine

    kernel = make_kernel(Engine(seed=0), KernelConfig(backend="resident"))
    assert getattr(kernel.kapi, "measure_many", None) is not None
    wrapped = FaultyKernelAPI(kernel.kapi, injector=None)
    assert getattr(wrapped, "measure_many", None) is None


@pytest.mark.parametrize("backend", ["batch", "resident"])
def test_faulted_resident_fingerprint_matches_strict(backend):
    """Under an active fault plan every backend must replay the exact
    same fault realization and schedule (the injector wraps the kapi,
    so measurement is per-pid everywhere)."""
    from repro.faults.plan import FaultPlan, ProcessCrash
    from repro.perf.differential import describe_difference, fingerprint_run
    from repro.units import sec
    from repro.workloads.shares import ShareDistribution, workload_shares

    plan = FaultPlan(
        seed=3,
        crashes=(ProcessCrash(400_000, 1),),
        signal_drop_prob=0.05,
        rusage_fail_prob=0.02,
    )
    shares = workload_shares(ShareDistribution.SKEWED, 5)
    kwargs = dict(seed=0, horizon_us=sec(2), fault_plan=plan)
    reference = fingerprint_run(shares, backend="strict", **kwargs)
    challenger = fingerprint_run(shares, backend=backend, **kwargs)
    assert challenger == reference, describe_difference(
        reference, challenger, left="strict", right=backend
    )
