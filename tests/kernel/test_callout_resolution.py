"""Sleep-deadline quantization (callout resolution)."""

import pytest

from repro.kernel.actions import Compute, Sleep
from repro.kernel.behaviors import GeneratorBehavior
from repro.kernel.kconfig import KernelConfig
from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine
from repro.units import ms


def wake_times(resolution_us, sleep_us, n=4):
    eng = Engine(seed=0)
    k = Kernel(
        eng,
        KernelConfig(ctx_switch_us=0, callout_resolution_us=resolution_us),
    )
    wakes = []

    def gen(proc, kapi):
        for _ in range(n):
            yield Sleep(sleep_us)
            wakes.append(kapi.now)
            yield Compute(1)

    k.spawn("t", GeneratorBehavior(gen))
    eng.run_until(ms(500))
    return wakes


def test_deadlines_round_up_to_resolution():
    wakes = wake_times(resolution_us=1000, sleep_us=1500)
    # 1.5 ms sleeps round to 2 ms edges (plus the 1 µs computes).
    assert wakes[0] == 2000
    for t in wakes:
        assert t % 1000 == 0


def test_exact_multiples_not_delayed():
    wakes = wake_times(resolution_us=1000, sleep_us=3000)
    assert wakes[0] == 3000


def test_coarse_resolution_tick_style():
    wakes = wake_times(resolution_us=10_000, sleep_us=ms(15))
    # With 10 ms callouts a 15 ms sleep alternates 20/10 ms periods,
    # exactly like setitimer on a hz=100 kernel.
    assert wakes[0] == 20_000
    assert all(t % 10_000 == 0 for t in wakes)


def test_fine_resolution_is_nearly_exact():
    wakes = wake_times(resolution_us=1, sleep_us=1234)
    assert wakes[0] == 1234
