"""Kernel dispatch, accounting, and the behavior trampoline."""

import pytest

from repro.errors import KernelError, NoSuchProcessError
from repro.kernel.actions import Compute, Exit, Sleep
from repro.kernel.behaviors import GeneratorBehavior
from repro.kernel.kconfig import KernelConfig
from repro.kernel.kernel import Kernel
from repro.kernel.process import ProcState
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.workloads.spinner import spinner_behavior


def make_kernel(**cfg_kwargs):
    cfg = KernelConfig(**cfg_kwargs)
    eng = Engine(seed=0)
    return eng, Kernel(eng, cfg)


def test_single_process_gets_all_cpu():
    eng, k = make_kernel(ctx_switch_us=0)
    p = k.spawn("solo", spinner_behavior())
    eng.run_until(sec(5))
    assert k.getrusage(p.pid) == pytest.approx(sec(5), abs=ms(1))


def test_two_equal_processes_split_cpu():
    eng, k = make_kernel(ctx_switch_us=0)
    a = k.spawn("a", spinner_behavior())
    b = k.spawn("b", spinner_behavior())
    eng.run_until(sec(10))
    ta, tb = k.getrusage(a.pid), k.getrusage(b.pid)
    assert ta + tb == pytest.approx(sec(10), abs=ms(5))
    assert ta == pytest.approx(tb, rel=0.05)


def test_work_conservation_with_context_switches():
    eng, k = make_kernel()  # default 5 µs csw
    for i in range(4):
        k.spawn(f"p{i}", spinner_behavior())
    eng.run_until(sec(5))
    total = sum(k.getrusage(p.pid) for p in k.live_processes())
    lost = sec(5) - total
    # Only context-switch slivers may be lost.
    assert 0 <= lost <= k.context_switches * k.cfg.ctx_switch_us + ms(1)


def test_getrusage_includes_inflight_time():
    eng, k = make_kernel(ctx_switch_us=0)
    p = k.spawn("solo", spinner_behavior())
    eng.run_until(ms(7))  # mid-burst
    assert k.getrusage(p.pid) == pytest.approx(ms(7), abs=10)


def test_exit_makes_process_zombie_and_unknown():
    eng, k = make_kernel()

    def gen(proc, kapi):
        yield Compute(ms(5))
        yield Exit(3)

    p = k.spawn("short", GeneratorBehavior(gen))
    eng.run_until(ms(50))
    assert p.state is ProcState.ZOMBIE
    assert p.exit_status == 3
    with pytest.raises(NoSuchProcessError):
        k.getrusage(p.pid)


def test_generator_return_exits_process():
    eng, k = make_kernel()

    def gen(proc, kapi):
        yield Compute(ms(1))

    p = k.spawn("oneshot", GeneratorBehavior(gen))
    eng.run_until(ms(10))
    assert p.state is ProcState.ZOMBIE


def test_exit_hook_runs():
    eng, k = make_kernel()
    exited = []
    k.add_exit_hook(lambda proc: exited.append(proc.pid))

    def gen(proc, kapi):
        yield Compute(ms(1))

    p = k.spawn("hooked", GeneratorBehavior(gen))
    eng.run_until(ms(10))
    assert exited == [p.pid]


def test_start_delay_defers_first_action():
    eng, k = make_kernel(ctx_switch_us=0)
    p = k.spawn("late", spinner_behavior(), start_delay=sec(1))
    eng.run_until(sec(2))
    # Only ran during the second half.
    assert k.getrusage(p.pid) == pytest.approx(sec(1), abs=ms(5))


def test_zero_length_action_storm_detected():
    eng, k = make_kernel()

    def gen(proc, kapi):
        while True:
            yield Compute(0)

    k.spawn("stuck", GeneratorBehavior(gen))
    with pytest.raises(KernelError, match="zero-length"):
        eng.run_until(ms(10))


def test_runnable_count_counts_current_and_queued():
    eng, k = make_kernel()
    k.spawn("a", spinner_behavior())
    k.spawn("b", spinner_behavior())
    eng.run_until(ms(50))
    assert k.runnable_count() == 2


def test_pids_of_uid():
    eng, k = make_kernel()
    a = k.spawn("a", spinner_behavior(), uid=10)
    b = k.spawn("b", spinner_behavior(), uid=10)
    c = k.spawn("c", spinner_behavior(), uid=11)
    assert sorted(k.pids_of_uid(10)) == sorted([a.pid, b.pid])
    assert k.pids_of_uid(11) == [c.pid]
    assert k.pids_of_uid(12) == []
