"""Run-queue bucketing, FIFO order, and removal."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import KernelError
from repro.kernel.process import Process
from repro.kernel.runqueue import NQS, PPQ, RunQueue


def _proc(pid: int, priority: int) -> Process:
    p = Process(pid=pid, name=f"p{pid}", uid=0, nice=0, behavior=None)
    p.priority = priority
    return p


def test_empty():
    rq = RunQueue()
    assert len(rq) == 0
    assert rq.pop_best() is None
    assert rq.best_priority() is None


def test_pops_lowest_priority_first():
    rq = RunQueue()
    rq.insert(_proc(1, 100))
    rq.insert(_proc(2, 50))
    rq.insert(_proc(3, 75))
    assert rq.pop_best().pid == 2
    assert rq.pop_best().pid == 3
    assert rq.pop_best().pid == 1


def test_fifo_within_bucket():
    rq = RunQueue()
    # Priorities 50 and 51 share a bucket (PPQ=4).
    rq.insert(_proc(1, 51))
    rq.insert(_proc(2, 50))
    assert rq.pop_best().pid == 1  # FIFO, not priority, within bucket


def test_insert_head_jumps_queue():
    rq = RunQueue()
    rq.insert(_proc(1, 50))
    rq.insert_head(_proc(2, 50))
    assert rq.pop_best().pid == 2


def test_remove_specific():
    rq = RunQueue()
    a, b = _proc(1, 50), _proc(2, 50)
    rq.insert(a)
    rq.insert(b)
    rq.remove(a)
    assert len(rq) == 1
    assert rq.pop_best() is b


def test_remove_with_stale_priority():
    rq = RunQueue()
    a = _proc(1, 50)
    rq.insert(a)
    a.priority = 120  # changed after insertion
    rq.remove(a)  # must still find it
    assert len(rq) == 0


def test_remove_absent_raises():
    rq = RunQueue()
    with pytest.raises(KernelError):
        rq.remove(_proc(1, 50))


def test_priority_out_of_range_rejected():
    rq = RunQueue()
    with pytest.raises(KernelError):
        rq.insert(_proc(1, NQS * PPQ))
    with pytest.raises(KernelError):
        rq.insert(_proc(2, -1))


def test_contains():
    rq = RunQueue()
    a = _proc(1, 10)
    assert a not in rq
    rq.insert(a)
    assert a in rq


@given(st.lists(st.integers(min_value=0, max_value=127), min_size=1, max_size=60))
def test_pop_order_nondecreasing_buckets(priorities):
    rq = RunQueue()
    for i, pri in enumerate(priorities):
        rq.insert(_proc(i, pri))
    buckets = []
    while True:
        p = rq.pop_best()
        if p is None:
            break
        buckets.append(p.priority >> 2)
    assert buckets == sorted(buckets)
    assert len(buckets) == len(priorities)
