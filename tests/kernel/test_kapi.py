"""KernelAPI facade."""

import pytest

from repro.errors import NoSuchProcessError
from repro.kernel.actions import Compute, Sleep
from repro.kernel.behaviors import GeneratorBehavior
from repro.kernel.kernel import Kernel
from repro.kernel.signals import SIGSTOP
from repro.sim.engine import Engine
from repro.units import ms
from repro.workloads.spinner import spinner_behavior


@pytest.fixture
def env():
    eng = Engine(seed=0)
    k = Kernel(eng)
    return eng, k, k.kapi


def test_now_tracks_engine(env):
    eng, k, kapi = env
    eng.run_until(ms(5))
    assert kapi.now == ms(5)


def test_getrusage_and_exists(env):
    eng, k, kapi = env
    p = k.spawn("a", spinner_behavior())
    eng.run_until(ms(10))
    assert kapi.getrusage(p.pid) > 0
    assert kapi.pid_exists(p.pid)
    assert not kapi.pid_exists(4242)


def test_is_blocked_matches_wait_channel(env):
    eng, k, kapi = env

    def gen(proc, kapi_):
        yield Compute(ms(1))
        yield Sleep(ms(100), channel="nfs")

    p = k.spawn("io", GeneratorBehavior(gen))
    eng.run_until(ms(20))
    assert kapi.is_blocked(p.pid)
    assert kapi.wait_channel_of(p.pid) == "nfs"


def test_kill_via_kapi(env):
    eng, k, kapi = env
    p = k.spawn("a", spinner_behavior())
    eng.run_until(ms(5))
    kapi.kill(p.pid, SIGSTOP)
    assert p.stopped


def test_spawn_via_kapi(env):
    eng, k, kapi = env
    p = kapi.spawn("child", spinner_behavior(), uid=77)
    assert kapi.pids_of_uid(77) == [p.pid]


def test_getrusage_unknown_pid_raises(env):
    _eng, _k, kapi = env
    with pytest.raises(NoSuchProcessError):
        kapi.getrusage(31337)
