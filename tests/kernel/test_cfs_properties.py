"""Property-based tests for the CFS run queue and policy."""

from hypothesis import given, settings, strategies as st

from repro.kernel.cfs import CfsRunQueue, nice_weight
from repro.kernel.process import Process


def _proc(pid, vruntime):
    p = Process(pid=pid, name=f"p{pid}", uid=0, nice=0, behavior=None)
    p.vruntime = vruntime
    return p


@given(
    st.lists(
        st.floats(min_value=0, max_value=1e9, allow_nan=False),
        min_size=1,
        max_size=60,
    )
)
def test_pop_order_is_sorted_by_vruntime(vruntimes):
    rq = CfsRunQueue()
    for i, v in enumerate(vruntimes):
        rq.insert(_proc(i, v))
    popped = []
    while True:
        p = rq.pop_best()
        if p is None:
            break
        popped.append(p.vruntime)
    assert popped == sorted(popped)
    assert len(popped) == len(vruntimes)


@given(
    st.lists(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=40,
    ),
    st.data(),
)
def test_removal_keeps_order(vruntimes, data):
    rq = CfsRunQueue()
    procs = [_proc(i, v) for i, v in enumerate(vruntimes)]
    for p in procs:
        rq.insert(p)
    victim = data.draw(st.sampled_from(procs))
    rq.remove(victim)
    assert victim not in rq
    remaining = []
    while True:
        p = rq.pop_best()
        if p is None:
            break
        remaining.append(p.vruntime)
    assert remaining == sorted(remaining)
    assert len(remaining) == len(procs) - 1


@given(st.integers(min_value=-20, max_value=19))
def test_nice_weight_monotone(nice):
    assert nice_weight(nice) > nice_weight(nice + 1)


@given(
    st.integers(min_value=-10, max_value=10),
    st.integers(min_value=1, max_value=1_000_000),
)
def test_vruntime_rate_inverse_to_weight(nice, consumed):
    """CPU time maps to vruntime inversely to the weight, so equal
    vruntime growth means weight-proportional CPU."""
    from repro.kernel.cfs import NICE0_WEIGHT

    delta = consumed * NICE0_WEIGHT / nice_weight(nice)
    delta0 = consumed  # nice-0 reference
    assert abs(delta * nice_weight(nice) / NICE0_WEIGHT - delta0) < 1e-6
