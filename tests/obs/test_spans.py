"""Span recorder: aggregates, breakdowns, and registry export."""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanRecorder


def test_record_and_stats():
    rec = SpanRecorder()
    rec.record("measure", 10.0, start_us=100)
    rec.record("measure", 30.0, start_us=200)
    rec.record("signal", 2.0)
    stats = rec.stats("measure")
    assert stats.count == 2
    assert stats.total_us == pytest.approx(40.0)
    assert stats.min_us == 10.0 and stats.max_us == 30.0
    assert stats.mean_us == pytest.approx(20.0)
    assert rec.stats("missing") is None
    assert rec.recorded == 3


def test_breakdown_sorted_by_total_desc():
    rec = SpanRecorder()
    rec.record("small", 1.0)
    rec.record("big", 100.0)
    rec.record("big", 100.0)
    assert [s.name for s in rec.breakdown()] == ["big", "small"]
    text = rec.format_breakdown()
    assert "big" in text and "share" in text
    assert SpanRecorder().format_breakdown() == "(no spans recorded)"


def test_recent_is_bounded_and_ordered():
    rec = SpanRecorder(keep_recent=3)
    for i in range(5):
        rec.record("s", float(i), start_us=i)
    assert [s.duration_us for s in rec.recent(10)] == [2.0, 3.0, 4.0]
    assert [s.duration_us for s in rec.recent(2)] == [3.0, 4.0]


def test_measure_records_wall_time():
    rec = SpanRecorder()
    with rec.measure("host_block"):
        pass
    stats = rec.stats("host_block")
    assert stats.count == 1
    assert stats.total_us >= 0.0


def test_to_registry_exports_labelled_span_metrics():
    rec = SpanRecorder()
    rec.record("measure", 10.0)
    rec.record("measure", 20.0)
    reg = MetricsRegistry()
    rec.to_registry(reg)
    assert reg.get("span_count", {"span": "measure"}).value == 2
    assert reg.get("span_total_us", {"span": "measure"}).value == 30.0
    assert reg.get("span_mean_us", {"span": "measure"}).value == 15.0


def test_clear_resets_aggregates():
    rec = SpanRecorder()
    rec.record("x", 1.0)
    rec.clear()
    assert rec.stats("x") is None and rec.recent() == []
