"""Observer facade and the workload → metrics bridge."""

from __future__ import annotations

import pytest

from repro.alps.config import AlpsConfig
from repro.faults.plan import FaultPlan, ProcessCrash
from repro.obs import Observer, collect_workload
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload


def _run(observer=None, fault_plan=None, horizon=sec(2)):
    cw = build_controlled_workload(
        [1, 2, 4],
        AlpsConfig(quantum_us=ms(10)),
        seed=0,
        observer=observer,
        fault_plan=fault_plan,
    )
    cw.engine.run_until(horizon)
    return cw


def test_observer_emit_respects_enabled_flag():
    obs = Observer()
    obs.emit(0, "k")
    obs.enabled = False
    obs.emit(1, "k")
    assert obs.events.emitted == 1


def test_finalize_metrics_folds_perf_and_spans():
    obs = Observer()
    obs.perf.incr("engine.events", 10)
    obs.spans.record("measure", 5.0)
    obs.events.emit(0, "k")
    reg = obs.finalize_metrics()
    assert reg is obs.metrics
    assert reg.get("engine.events").value == 10
    assert reg.get("span_count", {"span": "measure"}).value == 1
    assert reg.get("obs_events_emitted").value == 1


def test_engine_routes_run_accounting_into_observer_perf():
    obs = Observer()
    cw = _run(observer=obs)
    assert obs.perf.counts.get("engine.events", 0) > 0
    assert cw.engine.counters is obs.perf


def test_agent_records_hot_path_spans():
    obs = Observer()
    _run(observer=obs)
    names = {s.name for s in obs.spans.breakdown()}
    assert {"timer_event", "measure", "signal"} <= names
    # Virtual-cost spans follow the Table 1 model: every timer_event
    # span costs exactly the configured receive-timer cost.
    stats = obs.spans.stats("timer_event")
    assert stats.min_us == stats.max_us


def test_collect_workload_publishes_share_vs_attained():
    cw = _run(observer=Observer())
    obs = collect_workload(cw)
    assert obs is cw.observer
    reg = obs.metrics
    total = 1 + 2 + 4
    for sid, share in enumerate([1, 2, 4]):
        lbl = {"sid": str(sid)}
        assert reg.get("alps_subject_share", lbl).value == share
        assert reg.get("alps_subject_target_fraction", lbl).value == (
            pytest.approx(share / total)
        )
        attained = reg.get("alps_subject_attained_fraction", lbl).value
        assert attained == pytest.approx(share / total, abs=0.05)
    assert reg.get("alps_cycles_completed").value > 0
    assert reg.get("alps_rms_error_pct") is not None
    assert reg.get("alps_sampling_delay_us").count > 0


def test_collect_workload_without_observer_creates_one():
    cw = _run()  # unobserved run
    obs = collect_workload(cw)
    assert cw.observer is None
    assert obs.metrics.get("alps_cycles_completed").value > 0


def test_collect_workload_publishes_fault_tallies():
    plan = FaultPlan(seed=1, crashes=(ProcessCrash(500_000, 0),))
    cw = _run(observer=Observer(), fault_plan=plan)
    reg = collect_workload(cw).metrics
    assert reg.get("faults_crashes").value == cw.injector.crashes_injected
    assert reg.get("faults_crashes").value >= 1
