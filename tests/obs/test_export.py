"""Exporter round-trips: JSONL, CSV, and Prometheus text formats."""

from __future__ import annotations

import math

import pytest

from repro.obs.events import EventLog
from repro.obs.export import (
    events_to_jsonl,
    metrics_to_csv,
    metrics_to_jsonl,
    metrics_to_prometheus,
    parse_events_jsonl,
    parse_metrics_csv,
    parse_metrics_jsonl,
    parse_prometheus_text,
    prom_name,
    rows_to_markdown,
)
from repro.obs.registry import MetricsRegistry


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("agent.reads").inc(391)
    reg.counter("span_count", span="measure").inc(356)
    reg.gauge("alps_overhead_fraction").set(0.0024)
    reg.gauge("alps_subject_share", sid="0").set(1)
    h = reg.histogram("alps_sampling_delay_us", bounds=(100.0, 1000.0))
    for v in (50, 100, 900, 5000):
        h.observe(v)
    return reg


def test_events_jsonl_round_trip():
    log = EventLog()
    log.emit(100, "quantum.tick", count=1, due=3)
    log.emit(200, "fault.crash", detail="pid=4")
    log.emit(300, "agent.stall")
    text = events_to_jsonl(log)
    back = parse_events_jsonl(text)
    assert [(e.time_us, e.kind, dict(e.fields)) for e in back] == [
        (100, "quantum.tick", {"count": 1, "due": 3}),
        (200, "fault.crash", {"detail": "pid=4"}),
        (300, "agent.stall", {}),
    ]
    # Serialization is its own inverse's inverse.
    assert events_to_jsonl(back) == text


def test_metrics_jsonl_round_trip():
    reg = _registry()
    text = metrics_to_jsonl(reg)
    back = parse_metrics_jsonl(text)
    assert back.snapshot() == reg.snapshot()
    assert metrics_to_jsonl(back) == text


def test_metrics_csv_round_trip():
    reg = _registry()
    text = metrics_to_csv(reg)
    back = parse_metrics_csv(text)
    assert back.snapshot() == reg.snapshot()
    assert metrics_to_csv(back) == text


def test_csv_histogram_rows_have_bucket_sum_count():
    text = metrics_to_csv(_registry())
    lines = text.splitlines()
    assert lines[0] == "name,type,labels,field,le,value"
    hist_rows = [l for l in lines if l.startswith("alps_sampling_delay_us")]
    fields = [row.split(",")[3] for row in hist_rows]
    assert fields == ["bucket", "bucket", "bucket", "sum", "count"]
    assert any(",+Inf," in row for row in hist_rows)


def test_prometheus_exposition_parses_back():
    reg = _registry()
    text = metrics_to_prometheus(reg)
    samples = parse_prometheus_text(text)
    assert samples[("agent_reads", ())] == 391
    assert samples[("span_count", (("span", "measure"),))] == 356
    assert samples[("alps_overhead_fraction", ())] == pytest.approx(0.0024)
    # Histogram: cumulative buckets, +Inf equals _count.
    assert samples[("alps_sampling_delay_us_bucket", (("le", "100"),))] == 2
    assert samples[("alps_sampling_delay_us_bucket", (("le", "1000"),))] == 3
    assert samples[("alps_sampling_delay_us_bucket", (("le", "+Inf"),))] == 4
    assert samples[("alps_sampling_delay_us_count", ())] == 4
    assert samples[("alps_sampling_delay_us_sum", ())] == pytest.approx(6050)


def test_prometheus_type_headers_and_name_sanitization():
    text = metrics_to_prometheus(_registry())
    assert "# TYPE agent_reads counter" in text
    assert "# TYPE alps_overhead_fraction gauge" in text
    assert "# TYPE alps_sampling_delay_us histogram" in text
    assert "agent.reads" not in text  # dots sanitized
    assert prom_name("a.b-c/d") == "a_b_c_d"


def test_prometheus_parser_rejects_garbage():
    with pytest.raises(ValueError, match="unparseable"):
        parse_prometheus_text("}{ not a sample")
    assert parse_prometheus_text("# HELP x y\n\n") == {}
    assert parse_prometheus_text('x{le="+Inf"} 3')[("x", (("le", "+Inf"),))] == 3
    assert math.isinf(parse_prometheus_text("x +Inf")[("x", ())])


def test_empty_registry_exports_are_empty_but_parseable():
    reg = MetricsRegistry()
    assert parse_metrics_jsonl(metrics_to_jsonl(reg)).snapshot() == []
    assert parse_metrics_csv(metrics_to_csv(reg)).snapshot() == []
    assert parse_prometheus_text(metrics_to_prometheus(reg)) == {}


def test_rows_to_markdown():
    table = rows_to_markdown(["a", "b"], [[1, 2], ["x", "y"]])
    assert table.splitlines() == [
        "| a | b |",
        "|---|---|",
        "| 1 | 2 |",
        "| x | y |",
    ]
