"""The curses-free ``repro top`` renderer."""

from __future__ import annotations

import io

from repro.alps.config import AlpsConfig
from repro.obs import Observer
from repro.obs.top import render_top_frame, run_top
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload


def _workload():
    return build_controlled_workload(
        [1, 2, 4], AlpsConfig(quantum_us=ms(10)), seed=0, observer=Observer()
    )


def test_render_frame_shows_every_subject_and_header():
    cw = _workload()
    cw.engine.run_until(sec(2))
    frame = render_top_frame(cw)
    assert "repro top" in frame and "cycles=" in frame
    for sid in range(3):
        assert any(
            line.strip().startswith(str(sid)) for line in frame.splitlines()
        )
    assert "SHARE" in frame and "ATTAIN" in frame and "DRIFT" in frame
    assert "agent: reads=" in frame
    assert "#" in frame  # attained bars


def test_render_is_a_pure_function_of_state():
    cw = _workload()
    cw.engine.run_until(sec(1))
    assert render_top_frame(cw) == render_top_frame(cw)


def test_run_top_advances_time_and_counts_frames():
    cw = _workload()
    out = io.StringIO()
    rendered = run_top(
        cw, frame_us=ms(500), frames=3, interval_s=0, stream=out
    )
    assert rendered == 3
    assert cw.engine.now == 3 * ms(500)
    text = out.getvalue()
    assert text.count("repro top") == 3
    assert "\x1b[" not in text  # non-tty: no ANSI clears


def test_run_top_ansi_mode_when_forced():
    cw = _workload()
    out = io.StringIO()
    run_top(cw, frame_us=ms(100), frames=1, interval_s=0, stream=out, clear=True)
    assert out.getvalue().startswith("\x1b[H\x1b[J")
