"""CLI surface: ``repro top`` and ``repro obs tail|export``."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import main
from repro.obs.export import parse_metrics_csv, parse_prometheus_text


def test_top_renders_frames_and_exits(capsys):
    rc = main(
        ["top", "--frames", "2", "--interval", "0", "--frame-ms", "200"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert out.count("repro top") == 2
    assert "SHARE" in out


def test_top_rejects_bad_shares(capsys):
    assert main(["top", "--shares", "0,-1", "--frames", "1"]) == 2


def test_obs_tail_prints_jsonl(capsys):
    rc = main(["obs", "tail", "--seconds", "0.5", "-n", "5"])
    assert rc == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines[-1].startswith("#")  # summary trailer
    events = [json.loads(line) for line in lines[:-1]]
    assert 0 < len(events) <= 5
    assert all("kind" in e and "t" in e for e in events)


def test_obs_tail_kind_filter(capsys):
    rc = main(
        ["obs", "tail", "--seconds", "0.5", "-n", "100",
         "--kind", "cycle.complete"]
    )
    assert rc == 0
    lines = capsys.readouterr().out.strip().splitlines()
    events = [json.loads(line) for line in lines[:-1]]
    assert events
    assert all(e["kind"] == "cycle.complete" for e in events)


@pytest.mark.parametrize("fmt", ("jsonl", "csv", "prometheus"))
def test_obs_export_formats_are_parseable(fmt, capsys):
    rc = main(["obs", "export", "--seconds", "0.5", "--format", fmt])
    assert rc == 0
    out = capsys.readouterr().out
    if fmt == "jsonl":
        records = [json.loads(line) for line in out.strip().splitlines()]
        assert any(r["name"] == "alps_cycles_completed" for r in records)
    elif fmt == "csv":
        reg = parse_metrics_csv(out)
        assert reg.get("alps_cycles_completed").value > 0
    else:
        samples = parse_prometheus_text(out)
        assert samples[("alps_cycles_completed", ())] > 0


def test_obs_export_writes_files(tmp_path, capsys):
    metrics = tmp_path / "metrics.prom"
    events = tmp_path / "events.jsonl"
    rc = main(
        ["obs", "export", "--seconds", "0.5",
         "--out", str(metrics), "--events", str(events)]
    )
    assert rc == 0
    assert parse_prometheus_text(metrics.read_text())
    lines = events.read_text().strip().splitlines()
    assert lines and all(json.loads(l)["v"] == 1 for l in lines)


def test_obs_without_subcommand_shows_help(capsys):
    with pytest.raises(SystemExit):
        main(["obs"])
