"""Metrics registry: instruments, bucket edges, and absorption."""

from __future__ import annotations

import pytest

from repro.obs.registry import (
    DEFAULT_US_BUCKETS,
    Histogram,
    MetricsRegistry,
    restore_snapshot,
)
from repro.perf.counters import PerfCounters


def test_counter_is_monotone():
    reg = MetricsRegistry()
    c = reg.counter("hits")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = MetricsRegistry().gauge("depth")
    g.set(10)
    g.inc(5)
    g.dec(3)
    assert g.value == 12.0


def test_get_or_create_is_keyed_by_name_and_labels():
    reg = MetricsRegistry()
    a = reg.counter("reads", sid="0")
    b = reg.counter("reads", sid="1")
    assert a is not b
    assert reg.counter("reads", sid="0") is a  # same labels -> same object
    assert reg.get("reads", {"sid": "1"}) is b
    assert reg.get("reads") is None  # unlabelled variant never created


def test_kind_clash_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError, match="already registered as counter"):
        reg.gauge("x")


# ---------------------------------------------------------------------------
# Histogram bucket-edge semantics
# ---------------------------------------------------------------------------


def test_histogram_value_on_bound_lands_in_that_bucket():
    h = Histogram("h", bounds=(10.0, 20.0, 30.0))
    h.observe(10.0)  # == first bound -> le=10 bucket
    h.observe(10.1)  # just above -> le=20 bucket
    h.observe(20.0)  # == second bound -> le=20 bucket
    h.observe(30.0)  # == last bound -> le=30 bucket
    assert h.bucket_counts == [1, 2, 1, 0]


def test_histogram_overflow_goes_to_inf_bucket():
    h = Histogram("h", bounds=(10.0,))
    h.observe(10.000001)
    h.observe(1e12)
    assert h.bucket_counts == [0, 2]
    assert h.cumulative_buckets() == [(10.0, 0), (float("inf"), 2)]


def test_histogram_cumulative_view_and_sum_count():
    h = Histogram("h", bounds=(1.0, 2.0))
    for v in (0.5, 1.0, 1.5, 2.0, 5.0):
        h.observe(v)
    assert h.count == 5
    assert h.sum == pytest.approx(10.0)
    assert h.cumulative_buckets() == [(1.0, 2), (2.0, 4), (float("inf"), 5)]


def test_histogram_explicit_inf_bound_is_collapsed():
    h = Histogram("h", bounds=(5.0, float("inf")))
    assert h.bounds == (5.0,)
    assert len(h.bucket_counts) == 2


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("h", bounds=())
    with pytest.raises(ValueError):
        Histogram("h", bounds=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", bounds=(float("inf"),))


def test_histogram_bounds_fixed_at_creation():
    reg = MetricsRegistry()
    h = reg.histogram("lat", bounds=(1.0, 2.0))
    assert reg.histogram("lat", bounds=(9.0,)) is h  # later bounds ignored
    assert h.bounds == (1.0, 2.0)
    assert reg.histogram("other").bounds == DEFAULT_US_BUCKETS


# ---------------------------------------------------------------------------
# Snapshot / restore and PerfCounters absorption
# ---------------------------------------------------------------------------


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("reads", sid="0").inc(7)
    reg.gauge("overhead").set(0.0024)
    h = reg.histogram("delay_us", bounds=(10.0, 100.0))
    for v in (5, 10, 99, 1000):
        h.observe(v)
    return reg


def test_snapshot_restore_round_trip():
    reg = _populated_registry()
    back = restore_snapshot(reg.snapshot())
    assert back.snapshot() == reg.snapshot()


def test_snapshot_order_is_stable():
    a = MetricsRegistry()
    a.counter("b")
    a.counter("a")
    names = [rec["name"] for rec in a.snapshot()]
    assert names == sorted(names)


def test_restore_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown metric type"):
        restore_snapshot([{"name": "x", "type": "summary", "value": 1}])


def test_absorb_perf_counters():
    perf = PerfCounters()
    perf.incr("engine.events", 42)
    perf.add_time("engine.run", 1.25)
    reg = MetricsRegistry()
    reg.absorb_perf_counters(perf)
    assert reg.get("engine.events").value == 42
    assert reg.get("engine.run_seconds").value == pytest.approx(1.25)
    reg2 = MetricsRegistry()
    reg2.absorb_perf_counters(perf, prefix="sub_")
    assert reg2.get("sub_engine.events").value == 42
