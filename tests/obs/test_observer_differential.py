"""Observation must be schedule-invisible and seed-deterministic.

The same acceptance bar the kernel fast paths clear (PR 2's
differential harness): for equal seeds, a run with a live observer
attached must produce byte-identical cycle logs, traces, and final
clocks to an unobserved run — observation reads state, it never
advances clocks, draws randomness, or charges CPU.
"""

from __future__ import annotations

import pytest

from repro.alps.config import AlpsConfig
from repro.experiments.common import run_for_cycles
from repro.faults.plan import FaultPlan, ProcessCrash
from repro.obs import Observer
from repro.obs.export import events_to_jsonl
from repro.perf.differential import serialize_cycle_log
from repro.sim.trace import Tracer
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload

SHARES = [1, 2, 4]
HORIZON = sec(3)


def _fingerprint(observer, fault_plan=None, seed=7):
    tracer = Tracer()
    cw = build_controlled_workload(
        SHARES,
        AlpsConfig(quantum_us=ms(10)),
        seed=seed,
        observer=observer,
        fault_plan=fault_plan,
        tracer=tracer,
    )
    cw.engine.run_until(HORIZON)
    return (
        serialize_cycle_log(cw.agent.cycle_log),
        "\n".join(tracer.lines()).encode(),
        cw.engine.events_processed,
        cw.engine.now,
        cw.kernel.context_switches,
        tuple(cw.injector.trace_lines()) if cw.injector else (),
    ), cw


def _fault_plan():
    return FaultPlan(
        seed=3,
        crashes=(ProcessCrash(1_500_000, 1),),
        signal_drop_prob=0.05,
        rusage_fail_prob=0.02,
    )


@pytest.mark.parametrize("faulty", (False, True), ids=("clean", "faulted"))
def test_observed_run_is_byte_identical_to_unobserved(faulty):
    plan = _fault_plan() if faulty else None
    base, _ = _fingerprint(None, plan)
    observed, cw = _fingerprint(Observer(), plan)
    disabled, _ = _fingerprint(Observer.disabled(), plan)
    assert observed == base, "live observer perturbed the schedule"
    assert disabled == base, "disabled observer perturbed the schedule"
    # And the observer actually saw the run.
    assert cw.observer.events.emitted > 0


def test_event_stream_is_seed_deterministic():
    streams = []
    for _ in range(2):
        _, cw = _fingerprint(Observer(), _fault_plan())
        streams.append(events_to_jsonl(cw.observer.events))
    assert streams[0] == streams[1]
    assert len(streams[0]) > 0


def test_different_fault_seeds_give_different_event_streams():
    # Clean spinner runs are deterministic irrespective of seed; the
    # plan seed is what drives divergence, and the stream must show it.
    plan_a = FaultPlan(seed=3, signal_drop_prob=0.2)
    plan_b = FaultPlan(seed=4, signal_drop_prob=0.2)
    _, a = _fingerprint(Observer(), plan_a)
    _, b = _fingerprint(Observer(), plan_b)
    assert events_to_jsonl(a.observer.events) != events_to_jsonl(b.observer.events)


def test_disabled_observer_records_nothing():
    _, cw = _fingerprint(Observer.disabled())
    obs = cw.observer
    assert obs.events.emitted == 0
    assert len(obs.spans) == 0


def test_fault_events_mirror_the_injector_trace():
    _, cw = _fingerprint(Observer(), _fault_plan())
    fault_events = cw.observer.events.of_kind("fault.*")
    assert len(fault_events) == len(cw.injector.trace)
    for ev, rec in zip(fault_events, cw.injector.trace):
        assert ev.time_us == rec.time_us
        assert ev.kind == "fault." + rec.kind
        assert ev.fields["detail"] == rec.detail


def test_run_for_cycles_emits_progress_events():
    obs = Observer()
    cw = build_controlled_workload(
        SHARES, AlpsConfig(quantum_us=ms(10)), seed=0, observer=obs
    )
    run_for_cycles(cw, 3)
    progress = obs.events.of_kind("experiment.progress")
    assert progress, "no experiment.progress events emitted"
    last = progress[-1].fields
    assert last["cycles_goal"] == 3
    assert last["cycles_done"] >= 3
