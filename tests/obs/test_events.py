"""Event records, the ring buffer, and streaming sinks."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.events import (
    SCHEMA_VERSION,
    CallbackSink,
    EventLog,
    JsonlSink,
    NullSink,
    ObsEvent,
)


def test_event_json_round_trip():
    ev = ObsEvent(12345, "quantum.tick", {"count": 7, "due": 3, "pids": 5})
    back = ObsEvent.from_json(ev.to_json())
    assert back.time_us == ev.time_us
    assert back.kind == ev.kind
    assert dict(back.fields) == dict(ev.fields)


def test_event_json_is_stable_and_versioned():
    a = ObsEvent(1, "cycle.complete", {"b": 2, "a": 1})
    b = ObsEvent(1, "cycle.complete", {"a": 1, "b": 2})
    assert a.to_json() == b.to_json()  # field order must not leak
    rec = json.loads(a.to_json())
    assert rec["v"] == SCHEMA_VERSION
    assert rec["t"] == 1 and rec["kind"] == "cycle.complete"


def test_fieldless_event_omits_data_key():
    rec = json.loads(ObsEvent(9, "agent.stall").to_json())
    assert "data" not in rec
    assert ObsEvent.from_json(json.dumps(rec)).fields == {}


def test_from_json_rejects_other_schema_versions():
    line = json.dumps({"v": SCHEMA_VERSION + 1, "t": 0, "kind": "x"})
    with pytest.raises(ValueError, match="schema version"):
        ObsEvent.from_json(line)


def test_ring_buffer_bounds_memory_and_counts_drops():
    log = EventLog(capacity=4)
    for i in range(10):
        log.emit(i, "k", i=i)
    assert len(log) == 4
    assert log.emitted == 10
    assert log.dropped == 6
    assert [e.time_us for e in log.tail(100)] == [6, 7, 8, 9]
    assert [e.time_us for e in log.tail(2)] == [8, 9]
    assert log.tail(0) == []


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        EventLog(capacity=0)


def test_of_kind_exact_and_family_match():
    log = EventLog()
    log.emit(0, "fault.crash")
    log.emit(1, "fault.stall")
    log.emit(2, "cycle.complete")
    assert [e.kind for e in log.of_kind("fault.crash")] == ["fault.crash"]
    assert [e.kind for e in log.of_kind("fault.*")] == [
        "fault.crash",
        "fault.stall",
    ]
    assert log.of_kind("nope.*") == []


def test_sinks_see_every_event_even_past_ring_capacity():
    stream = io.StringIO()
    seen: list[ObsEvent] = []
    log = EventLog(
        capacity=2,
        sinks=(JsonlSink(stream), CallbackSink(seen.append), NullSink()),
    )
    for i in range(5):
        log.emit(i, "k")
    assert len(log) == 2  # ring rotated
    lines = stream.getvalue().splitlines()
    assert len(lines) == 5  # but the sink streamed all of them
    assert [e.time_us for e in seen] == [0, 1, 2, 3, 4]
    assert all(json.loads(line)["kind"] == "k" for line in lines)


def test_clear_keeps_the_emitted_total():
    log = EventLog()
    log.emit(0, "k")
    log.clear()
    assert len(log) == 0 and log.emitted == 1 and log.dropped == 1
