"""Parallel sweep execution."""

import pytest

from repro.experiments.parallel import default_workers, parallel_map
from repro.workloads.shares import ShareDistribution


def _square(x):
    return x * x


def _tiny_accuracy(args):
    from repro.experiments.accuracy import run_accuracy_point

    model, n, q = args
    return run_accuracy_point(model, n, q, cycles=5, seeds=(0,)).mean_rms_error_pct


def test_serial_fallback_preserves_order():
    assert parallel_map(_square, [3, 1, 2], workers=1) == [9, 1, 4]


def test_parallel_matches_serial():
    items = list(range(8))
    assert parallel_map(_square, items, workers=2) == [x * x for x in items]


def test_default_workers_positive():
    assert default_workers() >= 1


def test_experiment_cells_run_in_pool():
    cells = [
        (ShareDistribution.EQUAL, 5, 10),
        (ShareDistribution.LINEAR, 5, 10),
    ]
    serial = parallel_map(_tiny_accuracy, cells, workers=1)
    pooled = parallel_map(_tiny_accuracy, cells, workers=2)
    assert serial == pooled  # determinism across process boundaries
