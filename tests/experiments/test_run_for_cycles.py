"""run_for_cycles truncation semantics.

Experiments that hit ``max_sim_us`` before reaching their cycle goal
used to return silently with a short log; results downstream then
looked like a small-but-valid sample.  Truncation is now an explicit
policy: raise (default), warn, or ignore.
"""

from __future__ import annotations

import warnings

import pytest

from repro.alps.config import AlpsConfig
from repro.errors import SimulationTruncatedError
from repro.experiments.common import run_for_cycles
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload


def _workload():
    return build_controlled_workload([1, 1], AlpsConfig(quantum_us=ms(10)), seed=0)


def test_completion_returns_cycle_count():
    cw = _workload()
    got = run_for_cycles(cw, 5)
    assert got >= 5
    assert len(cw.agent.cycle_log) == got


def test_truncation_raises_by_default():
    cw = _workload()
    with pytest.raises(SimulationTruncatedError) as exc:
        run_for_cycles(cw, 1000, max_sim_us=sec(1), chunk_us=sec(1))
    assert exc.value.goal == "1000 cycles"
    assert "cycle" in exc.value.reached
    assert "truncated" in str(exc.value)


def test_truncation_warns_when_requested():
    cw = _workload()
    with pytest.warns(RuntimeWarning, match="truncated"):
        got = run_for_cycles(
            cw, 1000, max_sim_us=sec(1), chunk_us=sec(1), on_incomplete="warn"
        )
    assert 0 < got < 1000


def test_truncation_silent_when_ignored():
    cw = _workload()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        got = run_for_cycles(
            cw, 1000, max_sim_us=sec(1), chunk_us=sec(1), on_incomplete="ignore"
        )
    assert 0 < got < 1000


def test_invalid_policy_rejected_up_front():
    cw = _workload()
    with pytest.raises(ValueError, match="on_incomplete"):
        run_for_cycles(cw, 1, on_incomplete="explode")
