"""parallel_map must be a deterministic drop-in for the serial map.

Experiment sweeps are fanned out across worker processes; results must
be identical (content and order) regardless of worker count, and
worker exceptions must surface in the parent rather than vanish.
"""

from __future__ import annotations

import pytest

from repro.errors import SweepCellError
from repro.experiments.parallel import default_workers, parallel_map


def _square(x: int) -> int:  # module-level: must be picklable
    return x * x


def _simulate_cell(seed: int) -> tuple[int, int]:
    """A tiny seed-keyed 'simulation': pure function of its input."""
    import random

    rng = random.Random(seed)
    return seed, rng.randrange(10**9)


def _boom(x: int) -> int:
    if x == 3:
        raise ValueError("injected failure")
    return x


@pytest.mark.parametrize("workers", (1, 2, 4))
def test_results_match_serial_map_in_order(workers):
    items = list(range(12))
    assert parallel_map(_square, items, workers=workers) == [
        _square(i) for i in items
    ]


def test_worker_count_does_not_change_results():
    seeds = list(range(8))
    runs = {w: parallel_map(_simulate_cell, seeds, workers=w) for w in (1, 2, 4)}
    assert runs[1] == runs[2] == runs[4]


@pytest.mark.parametrize("workers", (1, 4))
def test_exceptions_propagate_with_failing_cell(workers):
    with pytest.raises(SweepCellError, match="injected failure") as info:
        parallel_map(_boom, list(range(6)), workers=workers)
    # The error names the exact cell that died, not just the sweep.
    assert "3" in str(info.value)
    assert isinstance(info.value.__cause__, ValueError)


def test_degenerate_inputs():
    assert parallel_map(_square, [], workers=4) == []
    assert parallel_map(_square, [7], workers=4) == [49]


def test_default_workers_is_positive():
    assert default_workers() >= 1
