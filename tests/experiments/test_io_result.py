"""IoExperimentResult mask logic on synthetic data."""

import numpy as np
import pytest

from repro.experiments.io import IoExperimentResult


def make_result():
    # 10 cycles; I/O starts at cycle 4; B blocked on cycles 5, 7, 9.
    idx = np.arange(10)
    share = np.tile([20.0, 30.0, 50.0], (10, 1))
    blocked = np.zeros(10, dtype=bool)
    blocked[[5, 7, 9]] = True
    return IoExperimentResult(
        cycle_indices=idx,
        share_pct=share,
        blocked_b=blocked,
        io_start_cycle=4,
    )


def test_masks_partition_post_io_cycles():
    r = make_result()
    post = r.cycle_indices >= 4
    assert ((r.active_mask | r.blocked_mask) == post).all()
    assert not (r.active_mask & r.blocked_mask).any()


def test_blocked_mask_matches_flags():
    r = make_result()
    assert list(np.flatnonzero(r.blocked_mask)) == [5, 7, 9]


def test_steady_mask_excludes_warmup_and_transition():
    r = make_result()
    # Cycles >= 10 warm-up excluded; here warm-up bound exceeds range.
    assert not r.steady_mask.any()


def test_mean_shares_empty_mask_is_nan():
    r = make_result()
    out = r.mean_shares(np.zeros(10, dtype=bool))
    assert np.isnan(out).all()


def test_mean_shares_values():
    r = make_result()
    out = r.mean_shares(r.blocked_mask)
    assert out == pytest.approx([20.0, 30.0, 50.0])
