"""Experiment runner plumbing (small configurations)."""

import math

import pytest

from repro.experiments.accuracy import run_accuracy_point
from repro.experiments.overhead import run_overhead_point
from repro.experiments.scalability import analyze_breakdown, run_scalability_point
from repro.workloads.shares import ShareDistribution


def test_accuracy_point_runs_and_labels():
    pt = run_accuracy_point(
        ShareDistribution.EQUAL, 5, 10, cycles=20, seeds=(0,)
    )
    assert pt.label == "Equal5"
    assert not math.isnan(pt.mean_rms_error_pct)
    assert pt.mean_rms_error_pct < 20.0
    assert len(pt.per_seed_errors) == 1


def test_accuracy_multiple_seeds_averaged():
    pt = run_accuracy_point(
        ShareDistribution.LINEAR, 5, 20, cycles=15, seeds=(0, 1)
    )
    assert pt.mean_rms_error_pct == pytest.approx(
        sum(pt.per_seed_errors) / 2
    )


def test_overhead_point_fields():
    pt = run_overhead_point(ShareDistribution.EQUAL, 5, 10, cycles=20)
    assert pt.overhead_pct > 0
    assert pt.invocations > 0
    assert pt.reads > 0
    assert pt.wall_us > 0
    assert pt.optimized


def test_overhead_unoptimized_reads_more():
    opt = run_overhead_point(ShareDistribution.EQUAL, 5, 10, cycles=20)
    unopt = run_overhead_point(
        ShareDistribution.EQUAL, 5, 10, cycles=20, optimized=False
    )
    assert unopt.reads > opt.reads
    assert unopt.overhead_pct > opt.overhead_pct


def test_scalability_point_and_analysis():
    pts = [
        run_scalability_point(n, 10, cycles=10, max_wall_s=60.0)
        for n in (5, 10, 15)
    ]
    analyses = analyze_breakdown(pts)
    assert len(analyses) == 1
    assert analyses[0].fit.slope > 0
