"""Markdown report generation (filtered to stay fast)."""

from repro.experiments.report import generate_report


def test_generate_report_section(tmp_path):
    out = generate_report(
        path=tmp_path / "report.md", only="multiple ALPSs"
    )
    text = out.read_text()
    assert text.startswith("# ALPS reproduction report")
    assert "## Figure 7 / Table 3" in text
    assert "average relative error" in text
    # Unselected sections are absent.
    assert "Figure 5" not in text


def test_generate_report_empty_filter(tmp_path):
    out = generate_report(path=tmp_path / "r.md", only="no-such-section")
    assert "##" not in out.read_text()
