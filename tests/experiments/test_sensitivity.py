"""Cost-scaling helpers of the sensitivity experiment."""

import pytest

from repro.alps.costs import CostModel
from repro.experiments.sensitivity import run_sensitivity_point, scaled_costs


def test_scaled_costs_multiplies_every_operation():
    doubled = scaled_costs(2.0)
    base = CostModel()
    assert doubled.timer_event_us == pytest.approx(2 * base.timer_event_us)
    assert doubled.measure_fixed_us == pytest.approx(2 * base.measure_fixed_us)
    assert doubled.measure_per_proc_us == pytest.approx(
        2 * base.measure_per_proc_us
    )
    assert doubled.signal_us == pytest.approx(2 * base.signal_us)


def test_scaled_costs_identity():
    assert scaled_costs(1.0) == CostModel()


def test_sensitivity_point_small():
    p = run_sensitivity_point(
        1.0, sizes=(5, 10, 15), cycles=8, max_wall_s=40.0
    )
    assert p.fit_slope > 0
    assert p.predicted_n > 0
    assert len(p.points) == 3
