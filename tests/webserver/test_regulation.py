"""Worker-pool auto-regulation."""

import pytest

from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine
from repro.units import sec
from repro.webserver.clients import ClosedLoopClients
from repro.webserver.database import DatabaseServer
from repro.webserver.regulation import RegulationPolicy, regulated_site
from repro.webserver.requests import RequestFactory


def build(n_clients, policy=None):
    engine = Engine(seed=0)
    kernel = Kernel(engine)
    db = DatabaseServer(engine, kernel, capacity=2)
    site, master, master_proc = regulated_site(
        kernel, db, name="s1", uid=3001, policy=policy
    )
    drv = ClosedLoopClients(
        engine,
        site,
        RequestFactory(rng=engine.rng.stream("reqs")),
        n_clients=n_clients,
        mean_think_us=300_000,
    )
    drv.start()
    return engine, kernel, site, master, drv


def test_pool_grows_under_load():
    policy = RegulationPolicy(start_workers=2, max_workers=16)
    engine, kernel, site, master, drv = build(n_clients=60, policy=policy)
    engine.run_until(sec(20))
    live = [w for w in site.workers if w.alive]
    assert master.forked > 0
    assert len(live) > policy.start_workers
    assert len(live) <= policy.max_workers
    assert site.stats.completed > 0


def test_pool_shrinks_when_idle():
    policy = RegulationPolicy(start_workers=2, max_workers=16, max_spare=3)
    engine, kernel, site, master, drv = build(n_clients=60, policy=policy)
    engine.run_until(sec(15))
    grew = len([w for w in site.workers if w.alive])
    # Load vanishes: clients stop resubmitting.
    drv._on_complete = lambda req: None  # type: ignore[assignment]
    site.set_completion_callback(lambda req: None)
    engine.run_until(sec(40))
    shrunk = len([w for w in site.workers if w.alive])
    assert master.reaped > 0
    assert shrunk < grew


def test_dynamic_workers_inherit_uid():
    policy = RegulationPolicy(start_workers=1, max_workers=8)
    engine, kernel, site, master, drv = build(n_clients=40, policy=policy)
    engine.run_until(sec(10))
    pids = set(kernel.pids_of_uid(3001))
    for w in site.workers:
        if w.alive:
            assert w.pid in pids
