"""Prefork site: accept queue and worker lifecycle."""

import numpy as np
import pytest

from repro.kernel.kernel import Kernel
from repro.kernel.process import ProcState
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.webserver.apache import PreforkSite
from repro.webserver.database import DatabaseServer
from repro.webserver.requests import RequestFactory


def make_site(max_workers=4, seed=0):
    eng = Engine(seed=seed)
    k = Kernel(eng)
    db = DatabaseServer(eng, k, capacity=2)
    site = PreforkSite(k, db, name="s1", uid=1001, max_workers=max_workers)
    factory = RequestFactory(rng=np.random.default_rng(seed))
    return eng, k, db, site, factory


def test_workers_spawned_with_uid():
    eng, k, db, site, _ = make_site(max_workers=6)
    assert len(site.workers) == 6
    assert sorted(k.pids_of_uid(1001)) == sorted(w.pid for w in site.workers)


def test_idle_workers_block_on_accept():
    eng, k, db, site, _ = make_site()
    eng.run_until(ms(100))
    for w in site.workers:
        assert w.state is ProcState.SLEEPING
        assert k.wait_channel_of(w.pid) == site.accept_channel


def test_request_is_served_end_to_end():
    eng, k, db, site, factory = make_site()
    completed = []
    site.set_completion_callback(lambda req: completed.append(req))
    eng.run_until(ms(10))
    req = factory.make("s1", 0, eng.now)
    site.enqueue(req)
    eng.run_until(sec(2))
    assert completed == [req]
    assert req.completed_at is not None
    assert site.stats.completed == 1
    assert db.completed == factory.db_rounds


def test_many_requests_all_complete():
    eng, k, db, site, factory = make_site(max_workers=3)
    eng.run_until(ms(10))
    for i in range(20):
        site.enqueue(factory.make("s1", i, eng.now))
    eng.run_until(sec(10))
    assert site.stats.completed == 20


def test_completions_in_window():
    eng, k, db, site, factory = make_site()
    eng.run_until(ms(10))
    site.enqueue(factory.make("s1", 0, eng.now))
    eng.run_until(sec(5))
    assert site.stats.completions_in(0, sec(5)) == 1
    assert site.stats.completions_in(sec(5), sec(10)) == 0
