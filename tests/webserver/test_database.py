"""Database server queueing model."""

import pytest

from repro.kernel.actions import Compute, SleepOn
from repro.kernel.behaviors import GeneratorBehavior
from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.webserver.database import DatabaseServer


def make_env(capacity=2):
    eng = Engine(seed=0)
    k = Kernel(eng)
    db = DatabaseServer(eng, k, capacity=capacity)
    return eng, k, db


def test_rejects_zero_capacity():
    eng = Engine(seed=0)
    k = Kernel(eng)
    with pytest.raises(ValueError):
        DatabaseServer(eng, k, capacity=0)


def test_single_query_wakes_sleeper_after_service():
    eng, k, db = make_env()
    done = []

    def gen(proc, kapi):
        db.submit(ms(30), "dbwait")
        yield SleepOn("dbwait")
        done.append(kapi.now)
        yield Compute(ms(1))

    k.spawn("worker", GeneratorBehavior(gen))
    eng.run_until(sec(1))
    assert done == [ms(30)]
    assert db.completed == 1


def test_queueing_beyond_capacity():
    eng, k, db = make_env(capacity=1)
    done = []

    def gen(proc, kapi):
        db.submit(ms(50), f"db{proc.pid}")
        yield SleepOn(f"db{proc.pid}")
        done.append((proc.pid, kapi.now))
        yield Compute(ms(1))

    a = k.spawn("a", GeneratorBehavior(gen))
    b = k.spawn("b", GeneratorBehavior(gen))
    eng.run_until(sec(1))
    times = dict(done)
    # With capacity 1, the second query waits for the first.
    assert sorted(times.values()) == [ms(50), ms(100)]


def test_parallel_service_within_capacity():
    eng, k, db = make_env(capacity=2)
    done = []

    def gen(proc, kapi):
        db.submit(ms(50), f"db{proc.pid}")
        yield SleepOn(f"db{proc.pid}")
        done.append(kapi.now)
        yield Compute(ms(1))

    k.spawn("a", GeneratorBehavior(gen))
    k.spawn("b", GeneratorBehavior(gen))
    eng.run_until(sec(1))
    assert done == [ms(50), ms(50)]


def test_utilization():
    eng, k, db = make_env(capacity=2)

    def gen(proc, kapi):
        db.submit(ms(100), f"db{proc.pid}")
        yield SleepOn(f"db{proc.pid}")
        yield Compute(ms(1))

    k.spawn("a", GeneratorBehavior(gen))
    eng.run_until(sec(1))
    # 100 ms of one server over 1 s of two servers = 5 %.
    assert db.utilization(sec(1)) == pytest.approx(0.05)


def test_min_service_time_clamped():
    eng, k, db = make_env()

    def gen(proc, kapi):
        db.submit(0, f"db{proc.pid}")
        yield SleepOn(f"db{proc.pid}")
        yield Compute(ms(1))

    k.spawn("a", GeneratorBehavior(gen))
    eng.run_until(ms(10))
    assert db.completed == 1
