"""Request factory distributions."""

import numpy as np

from repro.webserver.requests import PageRequest, RequestFactory


def make_factory(seed=0, **kw):
    return RequestFactory(rng=np.random.default_rng(seed), **kw)


def test_request_structure():
    f = make_factory()
    req = f.make("site1", 7, now=123)
    assert req.site == "site1"
    assert req.client_id == 7
    assert req.submitted_at == 123
    assert len(req.rounds) == f.db_rounds
    assert req.completed_at is None


def test_total_cpu_sums_parts():
    req = PageRequest(
        site="s",
        client_id=0,
        submitted_at=0,
        parse_cpu_us=100,
        rounds=[(5000, 200), (5000, 300)],
        render_cpu_us=400,
    )
    assert req.total_cpu_us == 1000


def test_mean_cpu_matches_configuration():
    f = make_factory(seed=1)
    total = sum(f.make("s", 0, 0).total_cpu_us for _ in range(4000)) / 4000
    expected = (
        f.mean_parse_cpu_us
        + f.db_rounds * f.mean_php_cpu_us
        + f.mean_render_cpu_us
    )
    assert abs(total - expected) / expected < 0.1


def test_draws_always_positive():
    f = make_factory(seed=2, mean_parse_cpu_us=1, mean_php_cpu_us=1)
    for _ in range(200):
        req = f.make("s", 0, 0)
        assert req.parse_cpu_us >= 1
        assert all(db >= 1 and php >= 1 for db, php in req.rounds)


def test_deterministic_given_seed():
    a = make_factory(seed=9).make("s", 0, 0)
    b = make_factory(seed=9).make("s", 0, 0)
    assert a.rounds == b.rounds and a.parse_cpu_us == b.parse_cpu_us
