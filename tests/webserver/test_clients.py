"""Closed-loop client driver."""

import numpy as np
import pytest

from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.webserver.apache import PreforkSite
from repro.webserver.clients import ClosedLoopClients
from repro.webserver.database import DatabaseServer
from repro.webserver.requests import RequestFactory


def make_stack(n_clients=10, mean_think_us=200_000):
    eng = Engine(seed=0)
    k = Kernel(eng)
    db = DatabaseServer(eng, k, capacity=2)
    site = PreforkSite(k, db, name="s1", uid=1001, max_workers=4)
    factory = RequestFactory(rng=eng.rng.stream("reqs"))
    drv = ClosedLoopClients(
        eng, site, factory, n_clients=n_clients, mean_think_us=mean_think_us
    )
    return eng, k, site, drv


def test_clients_cycle_submit_think_submit():
    eng, k, site, drv = make_stack(n_clients=3)
    drv.start()
    eng.run_until(sec(10))
    # Each client issued multiple requests over 10 s.
    assert site.stats.completed > 6
    assert len(drv.responses) == site.stats.completed


def test_throughput_window():
    eng, k, site, drv = make_stack(n_clients=5)
    drv.start()
    eng.run_until(sec(10))
    rps = drv.throughput(sec(2), sec(10))
    assert rps > 0
    assert rps == site.stats.completions_in(sec(2), sec(10)) / 8


def test_throughput_empty_window_is_zero():
    eng, k, site, drv = make_stack()
    assert drv.throughput(10, 10) == 0.0


def test_closed_loop_respects_population():
    """Completed requests never exceed what n clients could have issued."""
    eng, k, site, drv = make_stack(n_clients=2, mean_think_us=100_000)
    drv.start()
    eng.run_until(sec(5))
    # Each client has at most one request in flight at a time.
    assert site.stats.completed <= 2 * 5_000_000 // 100_000
