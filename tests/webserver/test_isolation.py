"""Web-server behaviour under explicit ALPS control (unit scale)."""

import pytest

from repro.alps.agent import spawn_alps
from repro.alps.config import AlpsConfig
from repro.alps.subjects import UserSubject
from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.webserver.apache import PreforkSite
from repro.webserver.clients import ClosedLoopClients
from repro.webserver.database import DatabaseServer
from repro.webserver.requests import RequestFactory


def build(n_sites=2, workers=4, clients=40):
    engine = Engine(seed=0)
    kernel = Kernel(engine)
    db = DatabaseServer(engine, kernel, capacity=2)
    sites, drivers = [], []
    for i in range(n_sites):
        site = PreforkSite(
            kernel, db, name=f"s{i}", uid=2000 + i, max_workers=workers
        )
        drv = ClosedLoopClients(
            engine,
            site,
            RequestFactory(rng=engine.rng.stream(f"r{i}")),
            n_clients=clients,
            mean_think_us=200_000,
        )
        drv.start()
        sites.append(site)
        drivers.append(drv)
    return engine, kernel, db, sites, drivers


def test_sites_saturate_cpu_without_alps():
    engine, kernel, db, sites, drivers = build()
    engine.run_until(sec(20))
    busy_frac = kernel.total_busy_us / kernel.now
    assert busy_frac > 0.9


def test_alps_biases_throughput():
    engine, kernel, db, sites, drivers = build()
    subjects = [
        UserSubject(sid=0, share=1, uid=2000),
        UserSubject(sid=1, share=4, uid=2001),
    ]
    spawn_alps(kernel, subjects, AlpsConfig(quantum_us=ms(50)))
    engine.run_until(sec(30))
    t0 = drivers[0].throughput(sec(10), sec(30))
    t1 = drivers[1].throughput(sec(10), sec(30))
    assert t1 > 2.5 * t0


def test_stopped_workers_leave_db_queries_pending_not_lost():
    """Suspension mid-request must not lose requests: they complete
    after resume."""
    engine, kernel, db, sites, drivers = build(n_sites=2)
    subjects = [
        UserSubject(sid=0, share=1, uid=2000),
        UserSubject(sid=1, share=9, uid=2001),
    ]
    spawn_alps(kernel, subjects, AlpsConfig(quantum_us=ms(20)))
    engine.run_until(sec(30))
    # The throttled site still completes requests (slowly).
    assert sites[0].stats.completed > 0
    # And every completed request has a completion timestamp.
    assert len(sites[0].stats.completion_times) == sites[0].stats.completed
