"""Deterministic same-timestamp ordering, classic and fused.

The simulation's byte-identity guarantees bottom out here: events that
share a ``(time, priority)`` must fire in scheduling order (FIFO via the
unique sequence number), and the fused same-instant stepping mode used
by the batch kernel backend must dispatch in *exactly* the order the
classic per-pop loop would — including when callbacks schedule or
cancel same-instant work mid-batch.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import Engine
from repro.sim.event_queue import EventQueue


def _recorder(log, label):
    def _cb(event):
        log.append(label)

    return _cb


# ----------------------------------------------------------------------
# Queue-level FIFO tie-break
# ----------------------------------------------------------------------
def test_same_time_same_priority_fires_in_schedule_order():
    queue = EventQueue()
    log: list[str] = []
    for i in range(10):
        queue.schedule(100, _recorder(log, f"e{i}"), 0)
    while (event := queue.pop()) is not None:
        event.callback(event)
    assert log == [f"e{i}" for i in range(10)]


def test_priority_breaks_ties_before_sequence():
    queue = EventQueue()
    queue.schedule(100, lambda e: None, 5, None, "late")
    queue.schedule(100, lambda e: None, 0, None, "early")
    queue.schedule(100, lambda e: None, 5, None, "late2")
    tags = []
    while (event := queue.pop()) is not None:
        tags.append(event.tag)
    assert tags == ["early", "late", "late2"]


def test_pop_time_batch_preserves_heap_order_and_liveness():
    queue = EventQueue()
    handles = [queue.schedule(100, lambda e: None, p) for p in (3, 1, 2)]
    queue.schedule(200, lambda e: None, 0, None, "future")
    entries = queue.pop_time_batch(until=1000)
    # All three same-instant entries, in (time, priority, seq) order.
    assert [(e[0], e[1]) for e in entries] == [(100, 1), (100, 2), (100, 3)]
    # Batch-popped events are still live and still cancellable.
    assert len(queue) == 4
    assert all(h.active for h in handles)
    for entry in entries:
        queue.mark_fired(entry[3])
    assert len(queue) == 1
    assert queue.peek_key() == (200, 0, 4)


def test_pop_time_batch_respects_until_and_skips_cancelled():
    queue = EventQueue()
    doomed = queue.schedule(100, lambda e: None, 0)
    queue.schedule(100, lambda e: None, 1, None, "kept")
    doomed.cancel()
    entries = queue.pop_time_batch(until=99)
    assert entries is None  # earliest pending fires after `until`... no:
    # cancelled head was at 100 too — recheck with a reachable horizon.
    entries = queue.pop_time_batch(until=100)
    assert [e[3].tag for e in entries] == ["kept"]
    assert queue.pop_time_batch(until=10**9) is None


def test_push_back_restores_undispatched_tail_exactly():
    queue = EventQueue()
    for p in range(4):
        queue.schedule(50, lambda e: None, p, None, f"p{p}")
    entries = queue.pop_time_batch(until=50)
    queue.mark_fired(entries[0][3])
    queue.push_back(entries[1:])
    assert len(queue) == 3
    tags = []
    while (event := queue.pop()) is not None:
        tags.append(event.tag)
    assert tags == ["p1", "p2", "p3"]


def test_push_back_drops_cancelled_and_fired_entries():
    queue = EventQueue()
    ha = queue.schedule(50, lambda e: None, 0)
    queue.schedule(50, lambda e: None, 1)
    entries = queue.pop_time_batch(until=50)
    queue.mark_fired(entries[1][3])
    ha.cancel()
    queue.push_back(entries)
    assert len(queue) == 0
    assert queue.pop() is None


# ----------------------------------------------------------------------
# Fused engine ≡ classic engine
# ----------------------------------------------------------------------
def _fused_engine() -> Engine:
    engine = Engine(seed=0)
    engine.enable_fused_stepping()
    return engine


def _run_script(engine: Engine, script, until: int) -> list[str]:
    """Schedule ``script`` = [(time, priority, label)] and run."""
    log: list[str] = []
    for time, priority, label in script:
        engine.at(time, _recorder(log, label), priority=priority)
    engine.run_until(until)
    return log


_scripts = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 2)),
    min_size=1,
    max_size=60,
)


@given(script=_scripts)
@settings(max_examples=200, deadline=None)
def test_fused_run_matches_classic_run(script):
    labeled = [(t, p, f"{i}:{t}.{p}") for i, (t, p) in enumerate(script)]
    classic = _run_script(Engine(seed=0), labeled, until=10)
    fused = _run_script(_fused_engine(), labeled, until=10)
    assert fused == classic
    assert len(fused) == len(labeled)


def test_fused_callback_scheduling_same_instant_interleaves():
    """A callback schedules same-instant work that must fire *before*
    the rest of the batch — the order guard must yield to the heap."""
    for make in (Engine, _fused_engine):
        engine = make()
        log: list[str] = []

        def first(event, engine=engine, log=log):
            log.append("first")
            # priority 1 sorts before the pending priority-2 batch entry.
            engine.at(100, _recorder(log, "injected"), priority=1)

        engine.at(100, first, priority=0)
        engine.at(100, _recorder(log, "second"), priority=2)
        engine.run_until(1000)
        if make is Engine:
            classic = list(log)
        else:
            assert log == classic
    assert classic == ["first", "injected", "second"]


def test_fused_callback_scheduling_later_same_instant_does_not_interleave():
    """Same-instant work that sorts *after* the batch stays after it."""
    engine = _fused_engine()
    log: list[str] = []

    def first(event):
        log.append("first")
        engine.at(100, _recorder(log, "appended"), priority=5)

    engine.at(100, first, priority=0)
    engine.at(100, _recorder(log, "second"), priority=2)
    engine.run_until(1000)
    assert log == ["first", "second", "appended"]


def test_fused_mid_batch_cancellation_suppresses_dispatch():
    """An earlier same-instant event cancels a later one: the cancelled
    event must not fire in either mode (the classic loop never pops it
    as pending; the fused loop re-checks at dispatch)."""
    results = {}
    for name, make in (("classic", Engine), ("fused", _fused_engine)):
        engine = make()
        log: list[str] = []
        handle_box = {}

        def killer(event, engine=engine, log=log, box=handle_box):
            log.append("killer")
            box["victim"].cancel()

        engine.at(100, killer, priority=0)
        handle_box["victim"] = engine.at(
            100, _recorder(log, "victim"), priority=1
        )
        engine.at(100, _recorder(log, "survivor"), priority=2)
        engine.run_until(1000)
        results[name] = log
    assert results["fused"] == results["classic"] == ["killer", "survivor"]


def test_fused_stop_mid_batch_pushes_tail_back():
    engine = _fused_engine()
    log: list[str] = []

    def stopper(event):
        log.append("stopper")
        engine.stop()

    engine.at(100, stopper, priority=0)
    engine.at(100, _recorder(log, "tail"), priority=1)
    processed = engine.run_until(1000)
    assert processed == 1
    assert log == ["stopper"]
    assert len(engine.queue) == 1  # tail pushed back, still pending
    engine.run_until(1000)
    assert log == ["stopper", "tail"]


def test_fused_live_count_stays_consistent():
    engine = _fused_engine()
    for t in (10, 10, 10, 20, 20):
        engine.at(t, lambda e: None)
    assert len(engine.queue) == 5
    engine.run_until(10)
    assert len(engine.queue) == 2
    engine.run_until(20)
    assert len(engine.queue) == 0


def test_fused_respects_max_events_via_classic_fallback():
    """``max_events`` callers get the classic loop (fused mode only
    handles unbounded runs) — semantics must not change."""
    engine = _fused_engine()
    log: list[str] = []
    for i in range(5):
        engine.at(10, _recorder(log, f"e{i}"))
    engine.run_until(10, max_events=2)
    assert log == ["e0", "e1"]
    engine.run_until(10)
    assert log == [f"e{i}" for i in range(5)]


def test_fused_clock_and_counters_match_classic():
    script = [(3, 0, "a"), (3, 1, "b"), (7, 0, "c")]
    classic_engine = Engine(seed=0)
    fused_engine = _fused_engine()
    classic = _run_script(classic_engine, script, until=9)
    fused = _run_script(fused_engine, script, until=9)
    assert fused == classic
    assert fused_engine.now == classic_engine.now == 9
    assert (
        fused_engine.events_processed
        == classic_engine.events_processed
        == 3
    )
