"""Engine run-loop semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_run_until_advances_clock_even_when_idle():
    eng = Engine()
    eng.run_until(1000)
    assert eng.now == 1000


def test_events_fire_in_order_and_clock_tracks():
    eng = Engine()
    seen = []
    eng.at(50, lambda e: seen.append((eng.now, "b")))
    eng.at(10, lambda e: seen.append((eng.now, "a")))
    eng.run_until(100)
    assert seen == [(10, "a"), (50, "b")]
    assert eng.now == 100


def test_events_beyond_horizon_do_not_fire():
    eng = Engine()
    seen = []
    eng.at(200, lambda e: seen.append("late"))
    eng.run_until(100)
    assert seen == []
    assert eng.now == 100
    eng.run_until(300)
    assert seen == ["late"]


def test_after_is_relative():
    eng = Engine()
    seen = []
    eng.at(10, lambda e: eng.after(5, lambda e2: seen.append(eng.now)))
    eng.run_until(100)
    assert seen == [15]


def test_scheduling_in_past_raises():
    eng = Engine()
    eng.at(10, lambda e: None)
    eng.run_until(20)
    with pytest.raises(SimulationError):
        eng.at(5, lambda e: None)


def test_negative_delay_raises():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.after(-1, lambda e: None)


def test_stop_halts_loop():
    eng = Engine()
    seen = []
    eng.at(10, lambda e: (seen.append(1), eng.stop()))
    eng.at(20, lambda e: seen.append(2))
    eng.run_until(100)
    assert seen == [1]
    # Run can be resumed afterwards.
    eng.run_until(100)
    assert seen == [1, 2]


def test_run_until_idle_drains_queue():
    eng = Engine()
    seen = []
    def chain(e):
        if len(seen) < 5:
            seen.append(eng.now)
            eng.after(10, chain)
    eng.at(0, chain)
    eng.run_until_idle()
    assert seen == [0, 10, 20, 30, 40]


def test_run_until_idle_bounds_runaway():
    eng = Engine()
    def forever(e):
        eng.after(1, forever)
    eng.at(0, forever)
    with pytest.raises(SimulationError):
        eng.run_until_idle(max_events=100)


def test_events_processed_counter():
    eng = Engine()
    for t in (1, 2, 3):
        eng.at(t, lambda e: None)
    eng.run_until(10)
    assert eng.events_processed == 3


def test_max_events_limit():
    eng = Engine()
    for t in range(10):
        eng.at(t, lambda e: None)
    processed = eng.run_until(100, max_events=4)
    assert processed == 4
