"""Tests for the optionally-compiled dispatch core loader.

:mod:`repro.sim.fastloop` resolves either a mypyc-compiled extension
or the plain-Python ``_fastloop.py`` source and reports the choice as
``ACTIVE_IMPL``.  Both implementations must be behaviorally identical;
the env overrides (``REPRO_FASTLOOP``, ``REPRO_COMPILED``) control
which one loads and whether a missing compiled artifact is an error.

The override tests run in subprocesses: the loader resolves once at
import, so flipping the environment inside this process would not
re-resolve it.
"""

from __future__ import annotations

import os
import subprocess
import sys

from repro.sim import fastloop

_PRINT_IMPL = "from repro.sim.fastloop import ACTIVE_IMPL; print(ACTIVE_IMPL)"


def _run(code: str, **env_overrides) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env.pop("REPRO_FASTLOOP", None)
    env.pop("REPRO_COMPILED", None)
    env.update(env_overrides)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    return subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
    )


def test_active_impl_is_a_known_value():
    assert fastloop.ACTIVE_IMPL in ("compiled", "interpreted")


def test_loader_exports_the_resolved_hot_path_functions():
    for name in ("pop_ready", "pop_time_batch", "push_back", "run_fused"):
        assert callable(getattr(fastloop, name))


def test_forced_interpreted_loads_the_python_source():
    proc = _run(_PRINT_IMPL, REPRO_FASTLOOP="interpreted")
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "interpreted"


def test_repro_compiled_arms_the_no_fallback_guard():
    """``REPRO_COMPILED=1`` must either resolve a compiled extension or
    fail loudly — never silently fall back to the interpreter."""
    proc = _run(_PRINT_IMPL, REPRO_COMPILED="1")
    if proc.returncode == 0:
        assert proc.stdout.strip() == "compiled"
    else:
        assert "REPRO_COMPILED" in proc.stderr
        assert "compiled extension" in proc.stderr


def test_forced_interpreted_overrides_repro_compiled():
    proc = _run(
        _PRINT_IMPL, REPRO_COMPILED="1", REPRO_FASTLOOP="interpreted"
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "interpreted"


def test_interpreted_source_loader_bypasses_any_compiled_shadow():
    module = fastloop._load_interpreted_source()
    assert module.__file__.endswith("_fastloop.py")
    for name in ("pop_ready", "pop_time_batch", "push_back", "run_fused"):
        assert callable(getattr(module, name))


def test_forced_interpreted_fingerprint_matches_in_process():
    """The interpreted implementation is byte-identical to whatever
    resolved in this process (trivially so when that is also the
    interpreter; the real check on a compiled install)."""
    from repro.perf.differential import fingerprint_run

    local = fingerprint_run([3, 2, 1], seed=0, horizon_us=1_000_000)
    proc = _run(
        "from repro.perf.differential import fingerprint_run; "
        "print(fingerprint_run([3, 2, 1], seed=0, "
        "horizon_us=1_000_000).digest())",
        REPRO_FASTLOOP="interpreted",
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == local.digest()
