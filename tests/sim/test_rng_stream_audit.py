"""Seed-stream audit for the batch kernel backend.

Determinism across backends requires more than identical arithmetic: no
backend may *create* (or consume from) an RNG stream the others don't,
because :class:`~repro.sim.rng.RngStreams` seeds streams by name and a
new consumer would shift nothing — but a *shared* consumer would shift
every later draw on that stream.  The audit pins three facts:

* strict and batch runs materialize the identical set of engine stream
  labels (the batch backend introduces no streams of its own);
* the fault injector's streams live in a private ``RngStreams`` keyed
  by the plan seed, disjoint from the engine's streams by construction
  — so batched measurement cannot perturb fault draws via the engine;
* the batch module's source never touches an RNG at all.
"""

from __future__ import annotations

import inspect

from repro.alps.config import AlpsConfig
from repro.faults.plan import FaultPlan, ProcessCrash
from repro.kernel.kconfig import KernelConfig
from repro.units import sec
from repro.workloads.scenarios import build_controlled_workload

SHARES = [5, 3, 2, 1]
HORIZON_US = sec(2)


def _run(backend: str, *, fault_plan: FaultPlan | None = None):
    cw = build_controlled_workload(
        SHARES,
        AlpsConfig(),
        seed=7,
        kernel_config=KernelConfig(strict=(backend == "strict"), backend=backend),
        fault_plan=fault_plan,
    )
    cw.engine.run_until(HORIZON_US)
    return cw


def test_batch_backend_creates_no_new_engine_streams():
    strict = _run("strict")
    batch = _run("batch")
    assert set(batch.engine.rng._streams) == set(strict.engine.rng._streams)


def test_injector_streams_disjoint_from_engine_streams():
    plan = FaultPlan(
        seed=3,
        crashes=(ProcessCrash(500_000, 1),),
        signal_drop_prob=0.05,
        rusage_fail_prob=0.02,
    )
    runs = {backend: _run(backend, fault_plan=plan) for backend in ("strict", "batch")}
    labels = {}
    for backend, cw in runs.items():
        injector_streams = set(cw.injector.rng._streams)
        engine_streams = set(cw.engine.rng._streams)
        # Private RngStreams objects: even an identical label would be an
        # independent generator, but keeping the *label namespaces*
        # disjoint is what makes "who consumed this draw" auditable.
        assert cw.injector.rng is not cw.engine.rng
        assert injector_streams, "fault plan should have drawn at least once"
        labels[backend] = (injector_streams, engine_streams)
    assert labels["batch"] == labels["strict"]


def test_batch_module_source_never_touches_rng():
    import repro.kernel.batch as batch_module

    source = inspect.getsource(batch_module)
    for needle in ("rng", "random", "RngStreams"):
        assert needle not in source, (
            f"{needle!r} appears in repro.kernel.batch — the batch backend "
            "must stay RNG-free to preserve cross-backend draw order"
        )
