"""Deterministic, independent RNG streams."""

from repro.sim.rng import RngStreams


def test_same_seed_same_stream():
    a = RngStreams(7).stream("x").random(5)
    b = RngStreams(7).stream("x").random(5)
    assert (a == b).all()


def test_different_names_different_streams():
    streams = RngStreams(7)
    a = streams.stream("x").random(5)
    b = streams.stream("y").random(5)
    assert not (a == b).all()


def test_different_seeds_different_draws():
    a = RngStreams(1).stream("x").random(5)
    b = RngStreams(2).stream("x").random(5)
    assert not (a == b).all()


def test_stream_is_cached():
    streams = RngStreams(0)
    assert streams.stream("x") is streams.stream("x")


def test_creation_order_does_not_matter():
    s1 = RngStreams(3)
    s2 = RngStreams(3)
    s1.stream("a")
    a1 = s1.stream("b").random(3)
    b1 = s2.stream("b").random(3)  # created first in s2
    assert (a1 == b1).all()
