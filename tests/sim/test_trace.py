"""Tracer behaviour."""

from repro.sim.trace import Tracer


def test_disabled_tracer_records_nothing():
    t = Tracer(enabled=False)
    t.record(1, "x")
    assert len(t) == 0


def test_records_and_filters():
    t = Tracer()
    t.record(1, "a", "one")
    t.record(2, "b", "two")
    t.record(3, "a", "three")
    assert len(t) == 3
    assert [r.detail for r in t.of_kind("a")] == ["one", "three"]


def test_capacity_limit():
    t = Tracer(capacity=2)
    for i in range(5):
        t.record(i, "k")
    assert len(t) == 2


def test_clear():
    t = Tracer()
    t.record(1, "a")
    t.clear()
    assert len(t) == 0
