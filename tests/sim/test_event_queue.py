"""Event queue ordering, cancellation, and stability."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.event_queue import EventQueue


def _noop(event):
    pass


def test_empty_queue():
    q = EventQueue()
    assert len(q) == 0
    assert q.pop() is None
    assert q.peek_time() is None


def test_orders_by_time():
    q = EventQueue()
    q.schedule(30, _noop, tag="c")
    q.schedule(10, _noop, tag="a")
    q.schedule(20, _noop, tag="b")
    assert [q.pop().tag for _ in range(3)] == ["a", "b", "c"]


def test_orders_by_priority_at_same_time():
    q = EventQueue()
    q.schedule(10, _noop, priority=5, tag="low")
    q.schedule(10, _noop, priority=1, tag="high")
    assert q.pop().tag == "high"
    assert q.pop().tag == "low"


def test_stable_fifo_for_ties():
    q = EventQueue()
    for i in range(10):
        q.schedule(7, _noop, tag=str(i))
    assert [q.pop().tag for _ in range(10)] == [str(i) for i in range(10)]


def test_negative_time_rejected():
    q = EventQueue()
    with pytest.raises(SimulationError):
        q.schedule(-1, _noop)


def test_cancel_removes_event():
    q = EventQueue()
    h = q.schedule(10, _noop, tag="x")
    q.schedule(20, _noop, tag="y")
    assert len(q) == 2
    h.cancel()
    assert len(q) == 1
    assert not h.active
    assert q.pop().tag == "y"


def test_cancel_twice_is_harmless():
    q = EventQueue()
    h = q.schedule(10, _noop)
    h.cancel()
    h.cancel()
    assert len(q) == 0


def test_cancel_after_fire_is_harmless():
    q = EventQueue()
    h = q.schedule(10, _noop)
    event = q.pop()
    assert event is not None
    h.cancel()  # already fired; must not corrupt the live count
    assert len(q) == 0


def test_peek_skips_cancelled():
    q = EventQueue()
    h = q.schedule(5, _noop)
    q.schedule(9, _noop, tag="live")
    h.cancel()
    assert q.peek_time() == 9


def test_clear():
    q = EventQueue()
    for t in (1, 2, 3):
        q.schedule(t, _noop)
    q.clear()
    assert len(q) == 0
    assert q.pop() is None


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200))
def test_pop_order_is_sorted(times):
    q = EventQueue()
    for t in times:
        q.schedule(t, _noop)
    popped = []
    while True:
        e = q.pop()
        if e is None:
            break
        popped.append(e.time)
    assert popped == sorted(times)


@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=2, max_size=100),
    st.data(),
)
def test_cancellation_preserves_rest(times, data):
    q = EventQueue()
    handles = [q.schedule(t, _noop) for t in times]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(times) - 1), max_size=len(times))
    )
    for i in to_cancel:
        handles[i].cancel()
    expected = sorted(t for i, t in enumerate(times) if i not in to_cancel)
    popped = []
    while True:
        e = q.pop()
        if e is None:
            break
        popped.append(e.time)
    assert popped == expected
    assert len(q) == 0
