"""Clock invariants."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import Clock


def test_starts_at_zero():
    assert Clock().now == 0


def test_starts_at_given_time():
    assert Clock(start=123).now == 123


def test_advance_moves_forward():
    c = Clock()
    c.advance_to(10)
    assert c.now == 10
    c.advance_to(10)  # same time is allowed
    assert c.now == 10


def test_advance_backwards_raises():
    c = Clock(start=100)
    with pytest.raises(SimulationError):
        c.advance_to(99)
