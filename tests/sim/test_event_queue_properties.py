"""Property tests for the event calendar.

The engine's determinism rests on two EventQueue guarantees that the
fused fast-path pops must never erode:

* ordering is exactly ``(time, priority, sequence)`` — in particular,
  events sharing a time and priority fire in scheduling (FIFO) order;
* lazy cancellation is safe: cancelled events never fire, never
  reorder their neighbours, and re-scheduling after a cancel behaves
  like a fresh schedule.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sim.event_queue import EventQueue

#: (time, priority) pairs; small domains force heavy collisions so the
#: stable tie break actually gets exercised.
schedules = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 2)),
    min_size=1,
    max_size=60,
)


def _drain(queue: EventQueue) -> list:
    out = []
    while True:
        ev = queue.pop()
        if ev is None:
            return out
        out.append(ev)


@given(pairs=schedules)
@settings(max_examples=200, deadline=None)
def test_pop_order_is_time_priority_fifo(pairs):
    queue = EventQueue()
    for i, (t, pri) in enumerate(pairs):
        queue.schedule(t, lambda e: None, pri, i)
    popped = [(e.time, e.priority, e.seq) for e in _drain(queue)]
    # Global order is (time, priority, seq); since seq increases with
    # scheduling order, equal (time, priority) groups come out FIFO.
    assert popped == sorted(popped)
    assert len(popped) == len(pairs)
    assert len(queue) == 0


@given(
    pairs=schedules,
    cancel_mask=st.lists(st.booleans(), min_size=60, max_size=60),
)
@settings(max_examples=200, deadline=None)
def test_cancellation_never_fires_and_never_reorders(pairs, cancel_mask):
    queue = EventQueue()
    handles = [
        queue.schedule(t, lambda e: None, pri, i)
        for i, (t, pri) in enumerate(pairs)
    ]
    cancelled = set()
    for i, handle in enumerate(handles):
        if cancel_mask[i]:
            handle.cancel()
            handle.cancel()  # double-cancel must be harmless
            cancelled.add(i)
    assert len(queue) == len(pairs) - len(cancelled)
    popped = _drain(queue)
    assert {e.payload for e in popped} == set(range(len(pairs))) - cancelled
    keys = [(e.time, e.priority, e.seq) for e in popped]
    assert keys == sorted(keys)  # survivors keep their relative order
    for handle in handles:
        assert not handle.active  # fired or cancelled by now


@given(
    pairs=schedules,
    new_time=st.integers(0, 16),
)
@settings(max_examples=200, deadline=None)
def test_cancel_then_reschedule_behaves_like_fresh_schedule(pairs, new_time):
    """The kernel's callout pattern: cancel a pending timer, arm a new
    one.  The replacement must order as a brand-new event (later seq)
    and the cancelled original must never surface."""
    queue = EventQueue()
    victim = queue.schedule(pairs[0][0], lambda e: None, pairs[0][1], "victim")
    for i, (t, pri) in enumerate(pairs[1:]):
        queue.schedule(t, lambda e: None, pri, i)
    victim.cancel()
    replacement = queue.schedule(new_time, lambda e: None, 0, "replacement")
    popped = _drain(queue)
    payloads = [e.payload for e in popped]
    assert "victim" not in payloads
    assert payloads.count("replacement") == 1
    # The replacement fires after every earlier event with the same
    # (time, priority) — it is the newest entry of its class.
    rep_index = payloads.index("replacement")
    rep_event = popped[rep_index]
    for earlier in popped[:rep_index]:
        assert (earlier.time, earlier.priority, earlier.seq) < (
            rep_event.time,
            rep_event.priority,
            rep_event.seq,
        )
    assert not replacement.active


@given(pairs=schedules, until=st.integers(0, 8))
@settings(max_examples=200, deadline=None)
def test_pop_ready_agrees_with_peek_then_pop(pairs, until):
    """The fused fast-path pop must be observationally identical to the
    peek_time/pop pair it replaced."""
    fused = EventQueue()
    plain = EventQueue()
    for i, (t, pri) in enumerate(pairs):
        fused.schedule(t, lambda e: None, pri, i)
        plain.schedule(t, lambda e: None, pri, i)
    while True:
        got = fused.pop_ready(until)
        nxt = plain.peek_time()
        expected = None
        if nxt is not None and nxt <= until:
            expected = plain.pop()
        if got is None:
            assert expected is None
            break
        assert expected is not None
        assert (got.time, got.priority, got.payload) == (
            expected.time,
            expected.priority,
            expected.payload,
        )
    assert len(fused) == len(plain)
