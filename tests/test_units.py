"""Time unit conversions."""

import pytest

from repro.units import MSEC, SEC, USEC, ms, sec, to_ms, to_sec, usec


def test_constants():
    assert USEC == 1
    assert MSEC == 1_000
    assert SEC == 1_000_000


def test_conversions_round_trip():
    assert ms(10) == 10_000
    assert sec(2.5) == 2_500_000
    assert to_ms(ms(7.5)) == pytest.approx(7.5)
    assert to_sec(sec(3)) == pytest.approx(3.0)


def test_fractional_rounding():
    assert ms(0.0004) == 0
    assert ms(0.0006) == 1
    assert usec(2.6) == 3
