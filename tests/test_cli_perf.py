"""CLI surface of the perf tooling (`repro perf report` / `perf diff`).

Pins the backend flag matrix — including the resident backend and the
``--backend all`` side-by-side comparison — and the mismatch contract
of ``perf diff``: non-zero exit plus a one-line *stderr* summary naming
the first mismatching cell (backend, model, size, seed) and the first
diverging byte offset.
"""

from __future__ import annotations

from repro.cli.main import main


def test_perf_report_accepts_resident_backend(capsys):
    rc = main(
        [
            "perf", "report",
            "--shares", "2,1",
            "--seconds", "2",
            "--backend", "resident",
        ]
    )
    assert rc == 0
    assert "events" in capsys.readouterr().out


def test_perf_report_backend_all_prints_side_by_side(capsys):
    rc = main(
        [
            "perf", "report",
            "--shares", "2,1",
            "--seconds", "2",
            "--backend", "all",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "fastloop impl:" in out
    # One throughput row per backend, side by side.
    for backend in ("strict", "optimized", "batch", "resident"):
        assert backend in out
    assert "events/sec" in out
    assert "all backends agree" in out


def test_perf_diff_accepts_resident_challenger(capsys):
    rc = main(
        [
            "perf", "diff",
            "--sizes", "5",
            "--seeds", "0",
            "--seconds", "1",
            "--backend", "resident",
        ]
    )
    captured = capsys.readouterr()
    assert rc == 0
    assert "0 mismatches" in captured.out
    assert captured.err == ""  # summary line only appears on mismatch


def test_perf_diff_mismatch_names_cell_and_byte_offset_on_stderr(
    capsys, monkeypatch
):
    import repro.perf.differential as differential
    from repro.perf.differential import CellComparison
    from repro.workloads.shares import ShareDistribution

    cells = [
        CellComparison(
            model=ShareDistribution.SKEWED,
            n=10,
            seed=0,
            matches=True,
            strict_digest="a" * 16,
            optimized_digest="a" * 16,
        ),
        CellComparison(
            model=ShareDistribution.LINEAR,
            n=20,
            seed=2,
            matches=False,
            strict_digest="b" * 16,
            optimized_digest="c" * 16,
            detail="trace line 4: strict='x' resident='y'",
            diverged_section="trace",
            diverged_byte=137,
        ),
    ]
    monkeypatch.setattr(
        differential, "differential_check", lambda **kwargs: cells
    )
    rc = main(["perf", "diff", "--backend", "resident"])
    captured = capsys.readouterr()
    assert rc == 1
    assert "1 mismatches" in captured.out
    summary = captured.err.strip()
    assert summary.startswith("perf diff: first mismatch:")
    assert "backend=resident" in summary
    assert "model=linear" in summary
    assert "n=20" in summary
    assert "seed=2" in summary
    assert "trace byte 137" in summary


def test_first_divergent_byte_locates_the_offset():
    from repro.perf.differential import RunFingerprint, first_divergent_byte

    a = RunFingerprint(
        cycle_log=b"abcdef", trace=b"xyz", events=3, final_now=10
    )
    same = RunFingerprint(
        cycle_log=b"abcdef", trace=b"xyz", events=3, final_now=10
    )
    assert first_divergent_byte(a, same) == ("", -1)
    flipped = RunFingerprint(
        cycle_log=b"abcXef", trace=b"xyz", events=3, final_now=10
    )
    assert first_divergent_byte(a, flipped) == ("cycle_log", 3)
    longer = RunFingerprint(
        cycle_log=b"abcdef", trace=b"xyzmore", events=4, final_now=10
    )
    assert first_divergent_byte(a, longer) == ("trace", 3)
    scalar_only = RunFingerprint(
        cycle_log=b"abcdef", trace=b"xyz", events=4, final_now=11
    )
    assert first_divergent_byte(a, scalar_only) == ("", -1)
