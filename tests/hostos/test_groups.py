"""Live group scheduling (HostGroupAlps)."""

import pytest

from repro.errors import HostOSError
from repro.hostos.groups import HostGroupAlps
from repro.hostos.spawn import spawn_spinner

pytestmark = pytest.mark.hostos


def test_config_validation():
    with pytest.raises(HostOSError):
        HostGroupAlps({1: 1}, {2: []})  # mismatched keys
    with pytest.raises(HostOSError):
        HostGroupAlps({1: 1}, {1: []}, quantum_s=0)


def test_groups_share_one_allocation():
    """Two pids in a 1-share group together get ~1/4 vs a 3-share pid."""
    procs = [spawn_spinner() for _ in range(3)]
    try:
        alps = HostGroupAlps(
            {0: 1, 1: 3},
            {0: [procs[0].pid, procs[1].pid], 1: [procs[2].pid]},
            quantum_s=0.05,
        )
        report = alps.run(4.0)
        by_group = alps.group_consumed(report)
        total = sum(by_group.values())
        assert total > 0
        assert by_group[1] / total == pytest.approx(0.75, abs=0.12)
    finally:
        for p in procs:
            p.kill()
            p.wait()


def test_membership_refresh_adopts_new_pid():
    procs = [spawn_spinner() for _ in range(2)]
    late = []

    def members(gid):
        if gid == 0:
            return [procs[0].pid] + [p.pid for p in late]
        return [procs[1].pid]

    try:
        alps = HostGroupAlps(
            {0: 1, 1: 1},
            {0: [procs[0].pid], 1: [procs[1].pid]},
            quantum_s=0.05,
            refresh_s=0.3,
            membership=members,
        )
        import threading, time

        def add_late():
            time.sleep(1.0)
            late.append(spawn_spinner())

        t = threading.Thread(target=add_late)
        t.start()
        report = alps.run(3.0)
        t.join()
        # The adopted pid is accounted against group 0.
        assert late and late[0].pid in report.consumed_us
    finally:
        for p in procs + late:
            p.kill()
            p.wait()
