"""Pure stat-line parsing (no live processes needed)."""

import pytest

from repro.errors import HostOSError
from repro.hostos.procfs import _US_PER_TICK, parse_stat_line


def make_line(pid=123, comm="python", state="R", utime=10, stime=5):
    tail = (
        f"{state} 1 1 1 0 -1 4194304 500 0 0 0 {utime} {stime} 0 0 20 0 "
        "1 0 12345 100000000 200 18446744073709551615 1 1 0 0 0 0 0 0 0 "
        "0 0 0 17 0 0 0 0 0 0"
    )
    return f"{pid} ({comm}) {tail}"


def test_basic_fields():
    stat = parse_stat_line(make_line())
    assert stat.pid == 123
    assert stat.comm == "python"
    assert stat.state == "R"
    assert stat.utime_ticks == 10
    assert stat.stime_ticks == 5
    assert stat.cpu_time_us == 15 * _US_PER_TICK


def test_comm_with_spaces_and_parens():
    line = make_line(comm="my (weird) name", state="S")
    stat = parse_stat_line(line)
    assert stat.comm == "my (weird) name"
    assert stat.state == "S"


def test_comm_with_trailing_paren():
    stat = parse_stat_line(make_line(comm="tmux: server)"))
    assert stat.comm == "tmux: server)"


def test_malformed_raises():
    with pytest.raises(HostOSError):
        parse_stat_line("garbage")
    with pytest.raises(HostOSError):
        parse_stat_line("1 (x) R 2")  # too few fields


def test_states_map_to_blocked():
    from repro.hostos.procfs import ProcStat

    for state, blocked in (("S", True), ("D", True), ("R", False), ("T", False)):
        stat = parse_stat_line(make_line(state=state))
        assert (stat.state in ("S", "D")) == blocked
