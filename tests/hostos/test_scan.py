"""Host process-table scanning."""

import os

import pytest

from repro.errors import HostOSError
from repro.hostos.scan import children_of, iter_pids, pids_of_uid, uid_of
from repro.hostos.spawn import spawn_spinner

pytestmark = pytest.mark.hostos


def test_iter_pids_includes_self():
    assert os.getpid() in set(iter_pids())


def test_uid_of_self():
    assert uid_of(os.getpid()) == os.getuid()


def test_uid_of_missing_raises():
    with pytest.raises(HostOSError):
        uid_of(2**22 - 5)


def test_pids_of_uid_contains_self_and_children():
    child = spawn_spinner()
    try:
        pids = pids_of_uid(os.getuid())
        assert os.getpid() in pids
        assert child.pid in pids
    finally:
        child.kill()
        child.wait()


def test_children_of_self():
    child = spawn_spinner()
    try:
        kids = children_of(os.getpid())
        assert child.pid in kids
    finally:
        child.kill()
        child.wait()
