"""Live HostAlps controller (short runs on real processes)."""

import os
import signal
import time

import pytest

from repro.errors import HostOSError
from repro.hostos.controller import HostAlps
from repro.hostos.procfs import proc_state
from repro.hostos.spawn import spawn_spinner

pytestmark = pytest.mark.hostos


def test_rejects_bad_quantum():
    with pytest.raises(HostOSError):
        HostAlps({1: 1}, quantum_s=0)


def test_enforces_rough_proportions_live():
    procs = [spawn_spinner() for _ in range(2)]
    try:
        alps = HostAlps(
            {procs[0].pid: 1, procs[1].pid: 3}, quantum_s=0.05
        )
        report = alps.run(4.0)
        fr = report.fractions()
        # Loose tolerance: host jitter + tick-resolution accounting.
        assert fr[procs[1].pid] == pytest.approx(0.75, abs=0.12)
        assert report.cycles >= 2
        assert report.overhead_fraction < 0.10
    finally:
        for p in procs:
            p.kill()
            p.wait()


def test_all_processes_resumed_on_exit():
    procs = [spawn_spinner() for _ in range(2)]
    try:
        alps = HostAlps({procs[0].pid: 1, procs[1].pid: 9}, quantum_s=0.05)
        alps.run(1.5)
        time.sleep(0.1)
        for p in procs:
            assert proc_state(p.pid) != "T"
    finally:
        for p in procs:
            p.kill()
            p.wait()


def test_survives_controlled_process_death():
    procs = [spawn_spinner() for _ in range(2)]
    try:
        alps = HostAlps({procs[0].pid: 1, procs[1].pid: 1}, quantum_s=0.05)
        procs[0].kill()
        procs[0].wait()
        report = alps.run(1.0)
        assert report.duration_s >= 1.0
    finally:
        for p in procs:
            p.kill()
            p.wait()
