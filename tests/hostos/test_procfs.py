"""/proc parsing against the live host (own process + children)."""

import os
import time

import pytest

from repro.errors import HostOSError
from repro.hostos import procfs
from repro.hostos.spawn import spawn_spinner

pytestmark = pytest.mark.hostos


def test_read_own_stat():
    stat = procfs.read_proc_stat(os.getpid())
    assert stat.pid == os.getpid()
    assert stat.state in ("R", "S", "D")
    assert stat.cpu_time_us >= 0


def test_missing_pid_raises():
    with pytest.raises(HostOSError):
        procfs.read_proc_stat(2**22 - 3)  # almost certainly absent
    assert not procfs.is_alive(2**22 - 3)


def test_cpu_time_grows_for_spinner():
    proc = spawn_spinner()
    try:
        time.sleep(0.3)
        first = procfs.cpu_time_us(proc.pid)
        time.sleep(0.5)
        second = procfs.cpu_time_us(proc.pid)
        assert second > first
    finally:
        proc.kill()
        proc.wait()


def test_spinner_not_blocked_while_running():
    proc = spawn_spinner()
    try:
        time.sleep(0.3)
        # A busy spinner on this machine is R (or briefly S); a stopped
        # one must be T and not "blocked".
        os.kill(proc.pid, 19)  # SIGSTOP
        time.sleep(0.05)
        assert procfs.proc_state(proc.pid) == "T"
        assert not procfs.is_blocked(proc.pid)
        os.kill(proc.pid, 18)  # SIGCONT
    finally:
        proc.kill()
        proc.wait()


def test_sleeping_process_is_blocked():
    import subprocess, sys

    proc = subprocess.Popen([sys.executable, "-c", "import time; time.sleep(5)"])
    try:
        time.sleep(0.3)
        assert procfs.is_blocked(proc.pid)
        assert procfs.proc_state(proc.pid) == "S"
    finally:
        proc.kill()
        proc.wait()


def test_comm_with_parens_parsed():
    stat = procfs.read_proc_stat(os.getpid())
    assert isinstance(stat.comm, str) and stat.comm
