"""HostAlps failure handling, with procfs and os.kill monkeypatched.

Unlike tests/hostos/test_controller.py these never touch real
processes, so they run in the default (non-hostos) suite.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass

import pytest

from repro.errors import HostOSError
from repro.hostos import procfs
from repro.hostos.controller import HostAlps


@dataclass(frozen=True)
class FakeStat:
    cpu_time_us: int
    state: str = "R"


def test_transient_read_is_retried_then_succeeds(monkeypatch):
    alps = HostAlps({888: 1}, quantum_s=0.05, read_retry_budget=3)
    calls = {"n": 0}

    def flaky(pid):
        calls["n"] += 1
        if calls["n"] < 3:
            raise HostOSError("torn read")
        return FakeStat(cpu_time_us=1234)

    monkeypatch.setattr(procfs, "read_proc_stat", flaky)
    monkeypatch.setattr(procfs, "is_alive", lambda pid: True)
    stat = alps._read_stat_with_retry(888)
    assert stat.cpu_time_us == 1234
    assert alps.read_retries == 2


def test_exhausted_read_budget_returns_none(monkeypatch):
    alps = HostAlps({888: 1}, quantum_s=0.05, read_retry_budget=1)
    monkeypatch.setattr(
        procfs, "read_proc_stat", lambda pid: (_ for _ in ()).throw(HostOSError("x"))
    )
    monkeypatch.setattr(procfs, "is_alive", lambda pid: True)
    assert alps._read_stat_with_retry(888) is None
    assert alps.read_retries == 1


def test_dead_pid_read_returns_none_without_retrying(monkeypatch):
    alps = HostAlps({888: 1}, quantum_s=0.05, read_retry_budget=5)

    def gone(pid):
        raise HostOSError("no such process")

    monkeypatch.setattr(procfs, "read_proc_stat", gone)
    monkeypatch.setattr(procfs, "is_alive", lambda pid: False)
    assert alps._read_stat_with_retry(888) is None
    assert alps.read_retries == 0


def test_rejects_negative_retry_budget():
    with pytest.raises(HostOSError):
        HostAlps({1: 1}, quantum_s=0.05, read_retry_budget=-1)


def test_signal_eperm_marks_uncontrollable_and_drops(monkeypatch):
    alps = HostAlps({555: 1, 556: 1}, quantum_s=0.05)

    def deny(pid, signo):
        raise PermissionError("EPERM")

    monkeypatch.setattr(os, "kill", deny)
    alps._signal(555, signal.SIGSTOP)
    assert 555 in alps.uncontrollable
    assert 555 not in alps.core.subjects
    assert 555 not in alps._stopped
    assert 556 in alps.core.subjects  # others unaffected


def test_signal_esrch_forgets_stop_state_but_keeps_subject(monkeypatch):
    """A vanished pid (ESRCH) is not an EPERM: the stop-set entry goes,
    and the next measurement's death path removes the subject."""
    alps = HostAlps({555: 1}, quantum_s=0.05)
    alps._stopped.add(555)

    def gone(pid, signo):
        raise ProcessLookupError("ESRCH")

    monkeypatch.setattr(os, "kill", gone)
    alps._signal(555, signal.SIGCONT)
    assert 555 not in alps._stopped
    assert 555 not in alps.uncontrollable


def test_resume_all_consults_kernel_truth(monkeypatch):
    """A pid stopped without bookkeeping (crash between SIGSTOP and the
    stop-set update) must still get its SIGCONT on exit."""
    alps = HostAlps({777: 1}, quantum_s=0.05)
    alps._initial[777] = 0
    monkeypatch.setattr(procfs, "proc_state", lambda pid: "T")
    sent = []
    monkeypatch.setattr(os, "kill", lambda pid, signo: sent.append((pid, signo)))
    alps._resume_all()
    assert (777, signal.SIGCONT) in sent
    assert alps._stopped == set()


def test_resume_all_skips_running_processes(monkeypatch):
    alps = HostAlps({777: 1}, quantum_s=0.05)
    alps._initial[777] = 0
    monkeypatch.setattr(procfs, "proc_state", lambda pid: "R")
    sent = []
    monkeypatch.setattr(os, "kill", lambda pid, signo: sent.append((pid, signo)))
    alps._resume_all()
    assert sent == []


def test_run_reports_last_read_for_died_process(monkeypatch):
    """The died-mid-run fallback: consumption is reported from the last
    successful reading, never raising and never inventing CPU time."""
    reads = {"n": 0}

    def cpu_time(pid):
        reads["n"] += 1
        if reads["n"] == 1:
            return 100  # the initial baseline read
        raise HostOSError("no such process")  # died immediately after

    monkeypatch.setattr(procfs, "cpu_time_us", cpu_time)
    monkeypatch.setattr(
        procfs, "read_proc_stat", lambda pid: (_ for _ in ()).throw(HostOSError("x"))
    )
    monkeypatch.setattr(procfs, "is_alive", lambda pid: False)
    monkeypatch.setattr(
        procfs, "proc_state", lambda pid: (_ for _ in ()).throw(HostOSError("x"))
    )
    killed = []
    monkeypatch.setattr(os, "kill", lambda pid, signo: killed.append((pid, signo)))

    alps = HostAlps({12345: 1}, quantum_s=0.01)
    report = alps.run(0.03)
    assert report.consumed_us == {12345: 0}  # last read == baseline
    assert 12345 not in alps.core.subjects  # dropped, not wedged
    # It may get the initial everyone-eligible SIGCONT, but once dead it
    # is never suspended again.
    assert all(signo == signal.SIGCONT for _, signo in killed)


# ----------------------------------------------------------------------
# _resume_all transient-failure retries (docs/resilience.md)
# ----------------------------------------------------------------------
def test_resume_one_retries_eintr_then_succeeds(monkeypatch):
    alps = HostAlps({777: 1}, quantum_s=0.05, resume_retry_budget=3)
    monkeypatch.setattr("time.sleep", lambda s: None)
    attempts = {"n": 0}

    def flaky(pid, signo):
        attempts["n"] += 1
        if attempts["n"] < 3:
            raise InterruptedError("EINTR")

    monkeypatch.setattr(os, "kill", flaky)
    assert alps._resume_one(777)
    assert alps.resume_retries == 2
    assert alps.resume_failures == 0


def test_resume_one_exhausted_budget_counts_failure(monkeypatch):
    alps = HostAlps({777: 1}, quantum_s=0.05, resume_retry_budget=2)
    monkeypatch.setattr("time.sleep", lambda s: None)
    monkeypatch.setattr(
        os, "kill", lambda pid, signo: (_ for _ in ()).throw(BlockingIOError("EAGAIN"))
    )
    assert not alps._resume_one(777)
    assert alps.resume_retries == 2
    assert alps.resume_failures == 1


def test_resume_one_unrecovered_pid_is_reported(monkeypatch):
    from repro.obs.observer import Observer

    obs = Observer()
    alps = HostAlps({777: 1}, quantum_s=0.05, resume_retry_budget=1, observer=obs)
    monkeypatch.setattr("time.sleep", lambda s: None)
    monkeypatch.setattr(
        os, "kill", lambda pid, signo: (_ for _ in ()).throw(InterruptedError("EINTR"))
    )
    assert not alps._resume_one(777)
    failed = obs.events.of_kind("hostalps.resume_failed")
    assert len(failed) == 1
    assert failed[0].fields["pid"] == 777


def test_resume_one_gone_or_denied_needs_no_retry(monkeypatch):
    alps = HostAlps({777: 1}, quantum_s=0.05, resume_retry_budget=5)
    monkeypatch.setattr(
        os, "kill", lambda pid, signo: (_ for _ in ()).throw(ProcessLookupError())
    )
    assert alps._resume_one(777)  # gone: nothing left to recover
    monkeypatch.setattr(
        os, "kill", lambda pid, signo: (_ for _ in ()).throw(PermissionError())
    )
    assert alps._resume_one(777)  # not ours: retrying cannot help
    assert alps.resume_retries == 0
    assert alps.resume_failures == 0


def test_resume_all_keeps_unresumed_pid_in_stop_set(monkeypatch):
    """A pid the budget could not resume stays in the stop-set: a later
    _resume_all (or the exit path's) gets another chance at it."""
    alps = HostAlps({777: 1}, quantum_s=0.05, resume_retry_budget=1)
    alps._initial[777] = 0
    alps._stopped.add(777)
    monkeypatch.setattr("time.sleep", lambda s: None)
    monkeypatch.setattr(
        os, "kill", lambda pid, signo: (_ for _ in ()).throw(InterruptedError())
    )
    alps._resume_all()
    assert 777 in alps._stopped
    assert alps.resume_failures == 1
