"""Live overload protection: admission control over real pids."""

import pytest

from repro.errors import HostOSError
from repro.hostos.controller import HostAlps
from repro.hostos.spawn import spawn_spinner
from repro.obs import Observer
from repro.overload import OverloadConfig, OverloadGuard

pytestmark = pytest.mark.hostos


def test_submit_pid_rejects_bad_share():
    alps = HostAlps({1: 5}, quantum_s=0.05)
    with pytest.raises(HostOSError):
        alps.submit_pid(1234, 0)


def test_submit_pid_without_guard_admits_immediately():
    procs = [spawn_spinner() for _ in range(2)]
    try:
        alps = HostAlps({procs[0].pid: 2}, quantum_s=0.05)
        assert alps.submit_pid(procs[1].pid, 3)
        assert procs[1].pid in alps.core.subjects
        report = alps.run(0.5)
        assert report.overload_stats is None
        assert procs[1].pid in report.consumed_us
    finally:
        for p in procs:
            p.kill()
            p.wait()


def test_submit_pid_with_spare_capacity_admits():
    procs = [spawn_spinner() for _ in range(2)]
    try:
        guard = OverloadGuard(OverloadConfig(capacity=3))
        alps = HostAlps({procs[0].pid: 1}, quantum_s=0.05, overload=guard)
        assert alps.submit_pid(procs[1].pid, 1)
        assert guard.admission.depth == 0
        report = alps.run(0.3)
        assert report.overload_stats is not None
        assert report.overload_stats["admission.admitted_immediately"] == 1
    finally:
        for p in procs:
            p.kill()
            p.wait()


def test_queued_pid_drains_when_a_member_dies():
    procs = [spawn_spinner() for _ in range(3)]
    try:
        obs = Observer()
        guard = OverloadGuard(OverloadConfig(capacity=2))
        alps = HostAlps(
            {procs[0].pid: 1, procs[1].pid: 1},
            quantum_s=0.05,
            overload=guard,
            observer=obs,
        )
        # The group is at capacity: the arrival has to wait its turn.
        assert not alps.submit_pid(procs[2].pid, 2)
        assert guard.admission.depth == 1
        assert procs[2].pid not in alps.core.subjects
        # A member dies; the controller reaps it on the next read and a
        # later wake drains the queue into the freed slot.
        procs[0].kill()
        procs[0].wait()
        alps.run(1.0)
        assert procs[2].pid in alps.core.subjects
        assert guard.admission.depth == 0
        kinds = [ev.kind for ev in obs.events.tail(len(obs.events))]
        assert "overload.queued" in kinds
        assert "overload.admitted" in kinds
    finally:
        for p in procs:
            p.kill()
            p.wait()


def test_dead_arrival_is_dropped_not_enforced():
    procs = [spawn_spinner() for _ in range(2)]
    try:
        guard = OverloadGuard(OverloadConfig(capacity=2))
        alps = HostAlps(
            {procs[0].pid: 1, procs[1].pid: 1}, quantum_s=0.05, overload=guard
        )
        victim = spawn_spinner()
        assert not alps.submit_pid(victim.pid, 1)
        victim.kill()
        victim.wait()
        procs[1].kill()
        procs[1].wait()
        alps.run(1.0)
        # The queued pid died before its slot opened: it must not join.
        assert victim.pid not in alps.core.subjects
        assert guard.admission.depth == 0
    finally:
        for p in procs:
            p.kill()
            p.wait()
