"""Overhead metrics and linear fits."""

import pytest

from repro.metrics.overhead import fit_overhead_line, overhead_percent


def test_overhead_percent():
    assert overhead_percent(5_000, 1_000_000) == pytest.approx(0.5)


def test_overhead_percent_rejects_zero_wall():
    with pytest.raises(ValueError):
        overhead_percent(1, 0)


def test_fit_recovers_exact_line():
    ns = [5, 10, 20, 40]
    ys = [0.0639 * n + 0.0604 for n in ns]
    fit = fit_overhead_line(ns, ys)
    assert fit.slope == pytest.approx(0.0639, rel=1e-6)
    assert fit.intercept == pytest.approx(0.0604, rel=1e-6)
    assert fit.r_squared == pytest.approx(1.0)
    assert fit(100) == pytest.approx(0.0639 * 100 + 0.0604)


def test_fit_requires_two_points():
    with pytest.raises(ValueError):
        fit_overhead_line([1], [0.1])


def test_fit_r_squared_degrades_with_noise():
    ns = list(range(2, 30))
    ys = [0.05 * n + ((-1) ** n) * 0.3 for n in ns]
    fit = fit_overhead_line(ns, ys)
    assert fit.r_squared < 1.0
