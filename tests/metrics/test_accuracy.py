"""RMS relative error metrics."""

import math

import numpy as np
import pytest

from repro.alps.instrumentation import CycleLog, CycleRecord
from repro.metrics.accuracy import (
    cycle_rms_relative_errors,
    mean_rms_relative_error,
    per_subject_fractions,
)

Q = 10_000


def rec(index, consumed, shares):
    return CycleRecord(
        index=index,
        end_time=index * 1000,
        consumed=consumed,
        blocked_quanta={k: 0 for k in consumed},
        shares=shares,
        quantum_us=Q,
    )


def test_perfect_allocation_has_zero_error():
    log = CycleLog()
    log.append(rec(0, {1: Q, 2: 2 * Q}, {1: 1, 2: 2}))
    errs = cycle_rms_relative_errors(log)
    assert errs.shape == (1,)
    assert errs[0] == pytest.approx(0.0)


def test_known_error_value():
    # Shares 1:1, consumption 150/50 of total 200 -> rel errors ±0.5.
    log = CycleLog()
    log.append(rec(0, {1: 150, 2: 50}, {1: 1, 2: 1}))
    errs = cycle_rms_relative_errors(log)
    assert errs[0] == pytest.approx(50.0)


def test_starved_subject_counts_full_negative_error():
    log = CycleLog()
    log.append(rec(0, {1: 200, 2: 0}, {1: 1, 2: 1}))
    # errors: +1 and -1 -> RMS 100 %.
    assert cycle_rms_relative_errors(log)[0] == pytest.approx(100.0)


def test_entitlement_mode_counts_overshoot():
    log = CycleLog()
    # Exact proportions but 2× the nominal cycle volume.
    log.append(rec(0, {1: 2 * Q, 2: 4 * Q}, {1: 1, 2: 2}))
    assert cycle_rms_relative_errors(log, ideal="proportional")[0] == pytest.approx(0.0)
    assert cycle_rms_relative_errors(log, ideal="entitlement")[0] == pytest.approx(100.0)


def test_mean_over_cycles_and_skip():
    log = CycleLog()
    log.append(rec(0, {1: 200, 2: 0}, {1: 1, 2: 1}))  # 100 % (warm-up)
    log.append(rec(1, {1: 100, 2: 100}, {1: 1, 2: 1}))  # 0 %
    log.append(rec(2, {1: 100, 2: 100}, {1: 1, 2: 1}))  # 0 %
    assert mean_rms_relative_error(log) == pytest.approx(100.0 / 3)
    assert mean_rms_relative_error(log, skip=1) == pytest.approx(0.0)


def test_empty_log_is_nan():
    assert math.isnan(mean_rms_relative_error(CycleLog()))


def test_unknown_ideal_mode_rejected():
    with pytest.raises(ValueError):
        cycle_rms_relative_errors(CycleLog(), ideal="nonsense")


def test_per_subject_fractions():
    log = CycleLog()
    log.append(rec(0, {1: 100, 2: 300}, {1: 1, 2: 3}))
    log.append(rec(1, {1: 100, 2: 300}, {1: 1, 2: 3}))
    fr = per_subject_fractions(log)
    assert fr[1] == pytest.approx(0.25)
    assert fr[2] == pytest.approx(0.75)


def test_per_subject_fractions_empty():
    log = CycleLog()
    log.append(rec(0, {1: 0}, {1: 1}))
    assert per_subject_fractions(log) == {1: 0.0}
