"""Breakdown-threshold model (Section 4.2)."""

import pytest

from repro.metrics.breakdown import predicted_threshold


def test_paper_thresholds():
    """The paper's own fits must reproduce its predicted thresholds."""
    assert predicted_threshold(0.0639, 0.0604) == pytest.approx(39, abs=1)
    assert predicted_threshold(0.0338, 0.0340) == pytest.approx(54, abs=1)
    assert predicted_threshold(0.0172, 0.0160) == pytest.approx(75, abs=1)


def test_threshold_satisfies_equation():
    slope, intercept = 0.05, 0.02
    n = predicted_threshold(slope, intercept)
    assert slope * n + intercept == pytest.approx(100.0 / (n + 1), rel=1e-9)


def test_steeper_slope_lower_threshold():
    assert predicted_threshold(0.1, 0.01) < predicted_threshold(0.01, 0.01)


def test_rejects_nonpositive_slope():
    with pytest.raises(ValueError):
        predicted_threshold(0.0, 0.1)
    with pytest.raises(ValueError):
        predicted_threshold(-0.1, 0.1)
