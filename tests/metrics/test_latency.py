"""Latency summaries."""

import math

import pytest

from repro.metrics.latency import summarize_latencies


def test_empty_is_nan():
    s = summarize_latencies([])
    assert s.count == 0
    assert math.isnan(s.mean_us)


def test_basic_percentiles():
    responses = [(i, 1000 * (i + 1)) for i in range(100)]  # 1..100 ms
    s = summarize_latencies(responses)
    assert s.count == 100
    assert s.p50_us == pytest.approx(50_500, rel=0.02)
    assert s.p99_us == pytest.approx(100_000, rel=0.02)
    assert s.mean_us == pytest.approx(50_500, rel=0.01)


def test_window_filters():
    responses = [(10, 1000), (20, 2000), (30, 3000)]
    s = summarize_latencies(responses, window=(15, 25))
    assert s.count == 1
    assert s.mean_us == 2000


def test_scaled_ms():
    s = summarize_latencies([(0, 5000)])
    assert s.scaled_ms()["mean_ms"] == pytest.approx(5.0)


def test_latency_shifts_with_alps_shares():
    """End-to-end: the low-share site's latency rises under ALPS."""
    from repro.alps.agent import spawn_alps
    from repro.alps.config import AlpsConfig
    from repro.alps.subjects import UserSubject
    from repro.kernel.kernel import Kernel
    from repro.sim.engine import Engine
    from repro.units import ms, sec
    from repro.webserver.apache import PreforkSite
    from repro.webserver.clients import ClosedLoopClients
    from repro.webserver.database import DatabaseServer
    from repro.webserver.requests import RequestFactory

    engine = Engine(seed=0)
    kernel = Kernel(engine)
    db = DatabaseServer(engine, kernel, capacity=2)
    drivers = []
    for i, uid in enumerate((4001, 4002)):
        site = PreforkSite(kernel, db, name=f"s{i}", uid=uid, max_workers=4)
        drv = ClosedLoopClients(
            engine,
            site,
            RequestFactory(rng=engine.rng.stream(f"r{i}")),
            n_clients=40,
            mean_think_us=200_000,
        )
        drv.start()
        drivers.append(drv)
    subjects = [
        UserSubject(sid=0, share=1, uid=4001),
        UserSubject(sid=1, share=5, uid=4002),
    ]
    spawn_alps(kernel, subjects, AlpsConfig(quantum_us=ms(50)))
    engine.run_until(sec(25))
    window = (sec(8), sec(25))
    slow = summarize_latencies(drivers[0].responses, window=window)
    fast = summarize_latencies(drivers[1].responses, window=window)
    assert slow.count > 0 and fast.count > 0
    assert slow.p50_us > fast.p50_us
