"""Slope fits and phase fractions."""

import numpy as np
import pytest

from repro.metrics.regression import phase_fractions, slope


def test_slope_exact():
    t = [0, 10, 20, 30]
    v = [0, 5, 10, 15]
    assert slope(t, v) == pytest.approx(0.5)


def test_slope_requires_two_points():
    with pytest.raises(ValueError):
        slope([1], [1])


def test_phase_fractions_from_slopes():
    t = np.arange(0, 100, 10)
    series = {
        1: (t, 1.0 * t),
        2: (t, 3.0 * t),
    }
    fr = phase_fractions(series, (0, 100))
    assert fr[1] == pytest.approx(0.25)
    assert fr[2] == pytest.approx(0.75)


def test_phase_fractions_window_filters():
    t = np.arange(0, 100, 10)
    # Subject 2 only has samples outside the window.
    series = {
        1: (t, 2.0 * t),
        2: (np.array([200, 210]), np.array([0, 10])),
    }
    fr = phase_fractions(series, (0, 100))
    assert 2 not in fr
    assert fr[1] == pytest.approx(1.0)


def test_phase_fractions_flat_series():
    t = np.arange(0, 100, 10)
    series = {1: (t, np.zeros_like(t))}
    fr = phase_fractions(series, (0, 100))
    assert fr[1] == 0.0
