"""cpulimit-style duty-cycle baseline."""

import pytest

from repro.baselines.duty_cycle import DutyCycleAgent, spawn_duty_cycle
from repro.errors import SchedulerConfigError
from repro.kernel.kernel import Kernel
from repro.kernel.signals import SIGKILL
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.workloads.spinner import spinner_behavior


def make_env(n):
    eng = Engine(seed=0)
    k = Kernel(eng)
    procs = [k.spawn(f"w{i}", spinner_behavior()) for i in range(n)]
    return eng, k, procs


def test_rejects_bad_config():
    with pytest.raises(SchedulerConfigError):
        DutyCycleAgent({1: 0.5}, period_us=0)
    with pytest.raises(SchedulerConfigError):
        DutyCycleAgent({1: 0.5}, sample_us=200_000, period_us=100_000)
    with pytest.raises(SchedulerConfigError):
        DutyCycleAgent({1: 0.8, 2: 0.8})
    with pytest.raises(SchedulerConfigError):
        DutyCycleAgent({1: -0.1})


def test_enforces_caps_roughly():
    eng, k, procs = make_env(2)
    proc, agent = spawn_duty_cycle(k, [1, 3], [p.pid for p in procs])
    eng.run_until(sec(20))
    a = k.getrusage(procs[0].pid)
    b = k.getrusage(procs[1].pid)
    assert b / (a + b) == pytest.approx(0.75, abs=0.08)


def test_not_work_conserving():
    """A single capped process cannot exceed its cap even when the CPU
    is otherwise idle — the key contrast with ALPS."""
    eng, k, procs = make_env(1)
    agent = DutyCycleAgent({procs[0].pid: 0.25})
    k.spawn("cpulimit", agent)
    eng.run_until(sec(10))
    usage = k.getrusage(procs[0].pid)
    assert usage < sec(10) * 0.35  # idles ~75 % of the machine


def test_survives_process_death():
    eng, k, procs = make_env(2)
    proc, agent = spawn_duty_cycle(k, [1, 1], [p.pid for p in procs])
    eng.run_until(sec(1))
    k.kill(procs[0].pid, SIGKILL)
    eng.run_until(sec(3))  # must not raise
    assert k.getrusage(procs[1].pid) > 0
