"""Lottery scheduler: probabilistic proportional share."""

import numpy as np
import pytest

from repro.baselines.lottery import LotteryScheduler
from repro.baselines.stride import StrideScheduler
from repro.errors import SchedulerConfigError
from repro.metrics.accuracy import mean_rms_relative_error

Q = 10_000


def test_rejects_bad_config():
    with pytest.raises(SchedulerConfigError):
        LotteryScheduler({}, Q)
    with pytest.raises(SchedulerConfigError):
        LotteryScheduler({1: -1}, Q)


def test_deterministic_given_seed():
    a = LotteryScheduler({1: 1, 2: 2}, Q, seed=5)
    b = LotteryScheduler({1: 1, 2: 2}, Q, seed=5)
    assert a.run(100 * Q) == b.run(100 * Q)


def test_long_run_proportions_converge():
    s = LotteryScheduler({1: 1, 2: 3}, Q, seed=0)
    consumed = s.run(20_000 * Q)
    frac = consumed[2] / (consumed[1] + consumed[2])
    assert frac == pytest.approx(0.75, abs=0.02)


def test_higher_variance_than_stride():
    shares = {1: 1, 2: 1}
    lot_err = mean_rms_relative_error(
        LotteryScheduler(shares, Q, seed=1).cycle_log(100)
    )
    stride_err = mean_rms_relative_error(StrideScheduler(shares, Q).cycle_log(100))
    assert lot_err > stride_err


def test_run_quantum_updates_consumption():
    s = LotteryScheduler({7: 1}, Q, seed=0)
    winner = s.run_quantum()
    assert winner == 7
    assert s.consumed_us[7] == Q
