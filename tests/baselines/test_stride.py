"""Stride scheduler: deterministic proportional share."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.stride import StrideScheduler
from repro.errors import SchedulerConfigError
from repro.metrics.accuracy import mean_rms_relative_error

Q = 10_000


def test_rejects_bad_config():
    with pytest.raises(SchedulerConfigError):
        StrideScheduler({}, Q)
    with pytest.raises(SchedulerConfigError):
        StrideScheduler({1: 0}, Q)
    with pytest.raises(SchedulerConfigError):
        StrideScheduler({1: 1}, 0)


def test_exact_proportions_over_cycle():
    s = StrideScheduler({1: 1, 2: 2, 3: 3}, Q)
    s.run(6 * Q)
    assert s.consumed_us == {1: Q, 2: 2 * Q, 3: 3 * Q}


def test_interleaving_spreads_high_share_client():
    s = StrideScheduler({1: 1, 2: 3}, Q)
    order = [s.run_quantum() for _ in range(8)]
    # Client 2 never waits more than two quanta in a row.
    gaps = [i for i, c in enumerate(order) if c == 2]
    assert max(b - a for a, b in zip(gaps, gaps[1:])) <= 2


def test_cycle_log_has_zero_error():
    s = StrideScheduler({1: 2, 2: 5, 3: 9}, Q)
    log = s.cycle_log(10)
    assert len(log) == 10
    assert mean_rms_relative_error(log) == pytest.approx(0.0, abs=1e-9)


@given(
    shares=st.dictionaries(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=9),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=50, deadline=None)
def test_allocation_error_bounds(shares):
    """Stride's guarantees (Waldspurger): pairwise relative error is
    bounded by one quantum, and absolute error by O(#clients) quanta;
    allocations are exactly proportional at cycle boundaries."""
    s = StrideScheduler(shares, Q)
    total_shares = sum(shares.values())
    nclients = len(shares)
    elapsed = 0
    for step in range(1, 5 * total_shares + 1):
        s.run_quantum()
        elapsed += Q
        for cid, share in shares.items():
            ideal = elapsed * share / total_shares
            # Absolute error bounded by the number of clients (loose
            # form of Waldspurger's O(n) bound).
            assert abs(s.consumed_us[cid] - ideal) <= nclients * Q + 1e-6
        # Pairwise relative error <= 1 quantum (in normalised units).
        sids = sorted(shares)
        for i in range(len(sids)):
            for j in range(i + 1, len(sids)):
                a, b = sids[i], sids[j]
                diff = abs(
                    s.consumed_us[a] / shares[a] - s.consumed_us[b] / shares[b]
                )
                assert diff <= Q * (1 / shares[a] + 1 / shares[b]) + Q + 1e-6
        if step % total_shares == 0:
            # Exact proportionality at cycle boundaries.
            for cid, share in shares.items():
                assert s.consumed_us[cid] == (step // total_shares) * share * Q
