"""Exception hierarchy."""

import pytest

from repro.errors import (
    HostOSError,
    InvalidProcessStateError,
    KernelError,
    NoSuchProcessError,
    ReproError,
    SchedulerConfigError,
    SimulationError,
)


def test_hierarchy():
    for exc in (
        SimulationError,
        KernelError,
        SchedulerConfigError,
        HostOSError,
    ):
        assert issubclass(exc, ReproError)
    assert issubclass(NoSuchProcessError, KernelError)
    assert issubclass(InvalidProcessStateError, KernelError)


def test_no_such_process_carries_pid():
    err = NoSuchProcessError(42)
    assert err.pid == 42
    assert "42" in str(err)


def test_catchable_as_repro_error():
    with pytest.raises(ReproError):
        raise NoSuchProcessError(1)
