"""HostAlps journaled crash recovery, with procfs monkeypatched.

Never touches real processes: procfs reads are scripted, so these run
in the default (non-hostos) suite.
"""

from __future__ import annotations

from repro.errors import HostOSError
from repro.hostos import procfs
from repro.hostos.controller import HostAlps
from repro.resilience.journal import FileJournal, encode_record


def make_journal(tmp_path) -> FileJournal:
    return FileJournal(str(tmp_path / "host.journal"), fsync=False)


def patched_procfs(monkeypatch, usages: dict[int, int]) -> None:
    monkeypatch.setattr(procfs, "cpu_time_us", lambda pid: usages[pid])
    monkeypatch.setattr(procfs, "is_alive", lambda pid: pid in usages)


def test_restore_from_journal_resumes_core_and_schedules_debt(
    tmp_path, monkeypatch
):
    journal = make_journal(tmp_path)
    first = HostAlps({41: 1, 42: 3}, quantum_s=0.05, journal=journal)
    first.core.count = 17  # mid-cycle state worth preserving
    first._last_read = {41: 1_000, 42: 5_000}
    journal.append(first.snapshot_state())
    journal.close()

    # "Crash": a fresh controller over the same journal.  Both pids
    # consumed CPU during the outage.
    patched_procfs(monkeypatch, {41: 1_800, 42: 6_200})
    second = HostAlps(
        {41: 1, 42: 3},
        quantum_s=0.05,
        journal=FileJournal(str(tmp_path / "host.journal"), fsync=False),
    )
    assert second.restore_from_journal()
    assert second.recovered
    assert second.core.count == 17
    # Downtime consumption became amortized debt, not a lump and not a
    # forgiven re-baseline.
    assert second._deferred_debt == {41: 800, 42: 1_200}
    # Baselines moved to the fresh readings: the debt is charged once.
    assert second._last_read == {41: 1_800, 42: 6_200}


def test_restore_prunes_pids_dead_during_outage(tmp_path, monkeypatch):
    journal = make_journal(tmp_path)
    first = HostAlps({41: 1, 42: 3}, quantum_s=0.05, journal=journal)
    first._last_read = {41: 1_000, 42: 5_000}
    journal.append(first.snapshot_state())
    journal.close()

    def read(pid):
        if pid == 42:
            raise HostOSError("gone")
        return 1_500

    monkeypatch.setattr(procfs, "cpu_time_us", read)
    monkeypatch.setattr(procfs, "is_alive", lambda pid: pid == 41)
    second = HostAlps(
        {41: 1, 42: 3},
        quantum_s=0.05,
        journal=FileJournal(str(tmp_path / "host.journal"), fsync=False),
    )
    assert second.restore_from_journal()
    assert 42 not in second.core.subjects
    assert 41 in second.core.subjects


def test_restore_returns_false_without_usable_journal(tmp_path):
    alps = HostAlps({41: 1}, quantum_s=0.05)  # no journal at all
    assert not alps.restore_from_journal()

    empty = FileJournal(str(tmp_path / "empty.journal"), fsync=False)
    alps2 = HostAlps({41: 1}, quantum_s=0.05, journal=empty)
    assert not alps2.restore_from_journal()
    assert not alps2.recovered

    # A journal whose only record is not a valid snapshot payload.
    path = tmp_path / "bad.journal"
    path.write_bytes(encode_record(0, {"kind": "not-a-snapshot"}))
    alps3 = HostAlps(
        {41: 1}, quantum_s=0.05,
        journal=FileJournal(str(path), fsync=False),
    )
    assert not alps3.restore_from_journal()
