"""The ``repro chaos`` CLI: exit codes, determinism, report files."""

from __future__ import annotations

import json

from repro.cli.main import main

#: Tiny campaign so the CLI tests stay in tier-1 time.
FAST = ["--episodes", "2", "--cycles", "15", "--no-cache"]


def test_chaos_run_passes_and_prints_table(capsys):
    rc = main(["chaos", "run", "--seed", "0", "--rates", "0.05", *FAST])
    captured = capsys.readouterr()
    assert rc == 0
    assert "verdict=PASS" in captured.out
    assert captured.err == ""


def test_chaos_run_is_deterministic(capsys):
    main(["chaos", "run", "--seed", "3", "--rates", "0.05", *FAST])
    first = capsys.readouterr().out
    main(["chaos", "run", "--seed", "3", "--rates", "0.05", *FAST])
    assert capsys.readouterr().out == first


def test_chaos_run_violation_exits_nonzero_with_stderr_summary(
    capsys, monkeypatch
):
    # Force a violation by collapsing the fairness bound to zero.
    from repro.resilience import chaos as chaos_mod

    original = chaos_mod.run_chaos_campaign

    def strict_campaign(seed, **kwargs):
        kwargs["fairness_base_pct"] = 0.0
        kwargs["fairness_slope_pct"] = 0.0
        return original(seed, **kwargs)

    monkeypatch.setattr(chaos_mod, "run_chaos_campaign", strict_campaign)
    rc = main(["chaos", "run", "--seed", "0", "--rates", "0.05", *FAST])
    captured = capsys.readouterr()
    assert rc == 1
    assert "verdict=FAIL" in captured.out
    assert "invariant violation" in captured.err
    assert "bounded_fairness" in captured.err


def test_chaos_report_writes_json(tmp_path, capsys):
    out = tmp_path / "report.json"
    rc = main(
        ["chaos", "report", "--seed", "0", "--rates", "0.05",
         "--out", str(out), *FAST]
    )
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["campaign_seed"] == 0
    assert payload["ok"] is True
    assert len(payload["episodes"]) == 2
    for ep in payload["episodes"]:
        assert len(ep["invariants"]) == 7


def test_chaos_rejects_bad_rates(capsys):
    import pytest

    with pytest.raises(SystemExit):
        main(["chaos", "run", "--rates", "fast,slow", *FAST])


def test_chaos_run_plane_suite(capsys):
    rc = main(
        ["chaos", "run", "--suite", "plane", "--seed", "0",
         "--rates", "0.05", *FAST]
    )
    captured = capsys.readouterr()
    assert rc == 0
    assert "verdict=PASS" in captured.out
    # The plane columns render with the rotating episode kinds.
    assert "kind" in captured.out
    assert "crash" in captured.out and "tear" in captured.out


def test_chaos_run_plane_suite_is_deterministic(capsys):
    args = ["chaos", "run", "--suite", "plane", "--seed", "2",
            "--rates", "0.05", *FAST]
    main(args)
    first = capsys.readouterr().out
    main(args)
    assert capsys.readouterr().out == first
