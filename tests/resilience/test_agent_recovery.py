"""Journaled crash recovery of the simulated agent, end to end."""

from __future__ import annotations

from repro.alps.config import AlpsConfig
from repro.experiments.common import run_for_cycles
from repro.faults.plan import AgentCrash, FaultPlan
from repro.obs.observer import Observer
from repro.resilience.journal import MemoryJournal
from repro.resilience.supervisor import RestartPolicy, Supervisor
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload

SHARES = (1, 2, 3)
CFG = AlpsConfig(quantum_us=ms(10))


def crash_plan(seed: int, *, crashes=1, horizon_us=sec(4)) -> FaultPlan:
    times = tuple(
        AgentCrash(time_us=(i + 1) * horizon_us // (crashes + 1))
        for i in range(crashes)
    )
    return FaultPlan(seed=seed, horizon_us=horizon_us, agent_crashes=times)


def build(seed=0, *, plan=None, journal=None, observer=None, supervisor=None):
    return build_controlled_workload(
        list(SHARES),
        CFG,
        seed=seed,
        fault_plan=plan,
        journal=journal,
        observer=observer,
        supervisor=supervisor,
    )


def test_crash_with_journal_recovers_instead_of_rebaselining():
    obs = Observer()
    cw = build(plan=crash_plan(0), journal=MemoryJournal(), observer=obs)
    run_for_cycles(cw, 30, max_sim_us=sec(4), on_incomplete="ignore")
    agent = cw.agent
    assert agent.restarts == 1
    assert agent.journal_recoveries == 1
    assert agent.recovery_fallbacks == 0
    assert agent.last_restart_journaled
    recovered = obs.events.of_kind("agent.recovered")
    assert len(recovered) == 1
    # The outage's consumption was scheduled as repayable debt, not
    # forgiven: the crash leaves real downtime, so debt is nonzero.
    assert recovered[0].fields["debt_us"] > 0
    # And the run kept making scheduling progress afterwards.
    assert len(agent.cycle_log) >= 30


def test_crash_without_journal_takes_lossy_path():
    cw = build(plan=crash_plan(0))
    run_for_cycles(cw, 30, max_sim_us=sec(4), on_incomplete="ignore")
    assert cw.agent.restarts == 1
    assert cw.agent.journal_recoveries == 0
    assert not cw.agent.last_restart_journaled


def test_corrupt_journal_falls_back_to_reconciliation():
    journal = MemoryJournal(fault_hook=lambda encoded: None)  # lose all
    cw = build(plan=crash_plan(0), journal=journal)
    run_for_cycles(cw, 30, max_sim_us=sec(4), on_incomplete="ignore")
    assert cw.agent.restarts == 1
    assert cw.agent.journal_recoveries == 0
    assert cw.agent.recovery_fallbacks == 1
    # The lossy path still leaves a working scheduler.
    assert len(cw.agent.cycle_log) >= 30


def test_recovery_restores_core_cycle_position():
    """The restored core resumes the same cycle: cycle indices in the
    log stay contiguous across the crash instead of restarting at 0."""
    cw = build(plan=crash_plan(0), journal=MemoryJournal())
    run_for_cycles(cw, 30, max_sim_us=sec(4), on_incomplete="ignore")
    indices = [rec.index for rec in cw.agent.cycle_log]
    assert indices == sorted(indices)
    assert len(set(indices)) == len(indices)


def test_deferred_debt_is_journaled_and_drains():
    """Debt survives in snapshots (key "debt") and is repaid over time:
    by the end of a healthy post-crash run the deferred map is empty."""
    journal = MemoryJournal()
    cw = build(plan=crash_plan(0), journal=journal)
    run_for_cycles(cw, 55, max_sim_us=sec(6), on_incomplete="ignore")
    rec = journal.recover()
    assert rec.snapshot is not None
    assert "debt" in rec.snapshot["agent"]
    assert cw.agent._deferred_debt == {}


def test_supervisor_budget_exhaustion_stands_down_and_resumes_all():
    plan = crash_plan(0, crashes=6, horizon_us=sec(6))
    sup = Supervisor(
        RestartPolicy(restart_budget=2, initial_backoff_us=ms(5)),
        quantum_us=CFG.quantum_us,
    )
    cw = build(plan=plan, journal=MemoryJournal(), supervisor=sup)
    cw.engine.run_until(sec(6))
    assert sup.degraded
    assert sup.restarts == 2
    # Degraded mode released everything: no worker left stopped.
    for proc in cw.workers:
        assert not cw.kernel.is_stopped(proc.pid)


def test_double_crash_recovers_twice():
    cw = build(plan=crash_plan(0, crashes=2), journal=MemoryJournal())
    run_for_cycles(cw, 30, max_sim_us=sec(4), on_incomplete="ignore")
    assert cw.agent.restarts == 2
    assert cw.agent.journal_recoveries == 2
    assert cw.agent.recovery_fallbacks == 0
