"""Journal record format, salvage recovery, and both journal stores."""

from __future__ import annotations

import pytest

from repro.errors import JournalCorruptError
from repro.resilience.journal import (
    FileJournal,
    MemoryJournal,
    encode_record,
    recover_journal,
)


def payload(n: int) -> dict:
    return {"kind": "snapshot", "n": n}


# ----------------------------------------------------------------------
# Record format
# ----------------------------------------------------------------------
def test_encode_is_deterministic_and_newline_terminated():
    a = encode_record(3, {"b": 1, "a": 2})
    b = encode_record(3, {"a": 2, "b": 1})  # key order must not matter
    assert a == b
    assert a.endswith(b"\n")
    assert a.startswith(b"ALPSJ1 3 ")


def test_recover_empty_journal():
    rec = recover_journal(b"")
    assert rec.snapshot is None
    assert rec.last_seq == -1
    assert rec.records == 0


def test_recover_clean_journal_returns_last_record():
    data = b"".join(encode_record(i, payload(i)) for i in range(5))
    rec = recover_journal(data)
    assert rec.records == 5
    assert rec.last_seq == 4
    assert rec.snapshot == payload(4)
    assert rec.discarded_bytes == 0
    assert rec.valid_bytes == len(data)


def test_bit_flip_invalidates_only_that_record():
    records = [encode_record(i, payload(i)) for i in range(4)]
    corrupt = bytearray(records[2])
    corrupt[len(corrupt) // 2] ^= 0xFF  # flip a body byte: CRC fails
    data = records[0] + records[1] + bytes(corrupt) + records[3]
    rec = recover_journal(data)
    assert rec.records == 3
    assert rec.snapshot == payload(3)  # later record salvaged
    assert rec.discarded_bytes == len(records[2])


def test_torn_tail_is_discarded():
    data = b"".join(encode_record(i, payload(i)) for i in range(3))
    torn = data + encode_record(3, payload(3))[:-5]  # no newline
    rec = recover_journal(torn)
    assert rec.records == 3
    assert rec.snapshot == payload(2)
    assert rec.discarded_bytes > 0


def test_torn_mid_journal_append_does_not_shadow_later_records():
    """The regression the salvage scan exists for: a torn record eats
    its newline, merging with the next append onto one line.  Recovery
    must resynchronise and keep trusting the CRC'd records after it."""
    good = [encode_record(i, payload(i)) for i in range(6)]
    torn = encode_record(99, {"kind": "snapshot", "n": 99})[:-10]
    data = good[0] + good[1] + torn + good[2] + good[3] + good[4] + good[5]
    rec = recover_journal(data)
    assert rec.snapshot == payload(5)
    assert rec.last_seq == 5
    # Only the torn record (and nothing else) was lost: the append it
    # merged with is salvaged from inside the damaged line.
    assert rec.records == 6
    assert rec.discarded_bytes == len(torn)


def test_stale_sequence_numbers_never_shadow_newer_state():
    data = (
        encode_record(5, payload(5))
        + encode_record(2, payload(2))  # replayed old record
        + encode_record(6, payload(6))
    )
    rec = recover_journal(data)
    assert rec.snapshot == payload(6)
    assert rec.records == 2  # the stale record does not count


def test_strict_mode_raises_on_any_damage():
    data = encode_record(0, payload(0)) + b"garbage-no-newline"
    with pytest.raises(JournalCorruptError) as exc:
        recover_journal(data, strict=True)
    assert exc.value.discarded_bytes > 0
    # Clean data never raises.
    recover_journal(encode_record(0, payload(0)), strict=True)


def test_pure_garbage_recovers_to_nothing():
    rec = recover_journal(b"not a journal\nat all\n")
    assert rec.snapshot is None
    assert rec.records == 0
    assert rec.discarded_bytes > 0


# ----------------------------------------------------------------------
# MemoryJournal
# ----------------------------------------------------------------------
def test_memory_journal_roundtrip_and_seq_advance():
    j = MemoryJournal()
    for i in range(10):
        j.append(payload(i))
    rec = j.recover()
    assert rec.snapshot == payload(9)
    assert rec.records == 10
    assert j.appends == 10


def test_memory_journal_fault_hook_can_lose_and_tear():
    drops = iter([None, b"ALPSJ1 torn", *([None] * 0)])

    def hook(encoded: bytes):
        try:
            return next(drops)
        except StopIteration:
            return encoded

    j = MemoryJournal(fault_hook=hook)
    j.append(payload(0))  # lost
    j.append(payload(1))  # torn
    j.append(payload(2))  # intact
    rec = j.recover()
    assert rec.snapshot == payload(2)
    assert rec.records == 1


def test_memory_journal_compaction_preserves_recovery_point():
    j = MemoryJournal(compact_threshold=8)
    for i in range(20):
        j.append(payload(i))
    assert j.compactions >= 2
    rec = j.recover()
    assert rec.snapshot == payload(19)
    assert len(j) < 20 * len(encode_record(0, payload(0)))


def test_memory_journal_rejects_tiny_compact_threshold():
    with pytest.raises(ValueError):
        MemoryJournal(compact_threshold=1)


# ----------------------------------------------------------------------
# FileJournal
# ----------------------------------------------------------------------
def test_file_journal_roundtrip(tmp_path):
    path = tmp_path / "alps.journal"
    j = FileJournal(str(path), fsync=False)
    for i in range(5):
        j.append(payload(i))
    j.close()
    # A fresh handle (the restarted controller) recovers the tail.
    j2 = FileJournal(str(path), fsync=False)
    rec = j2.recover()
    assert rec.snapshot == payload(4)
    # And keeps sequence numbers advancing past everything on disk.
    j2.append(payload(5))
    rec2 = j2.recover()
    assert rec2.last_seq > rec.last_seq
    assert rec2.snapshot == payload(5)
    j2.close()


def test_file_journal_recovers_after_torn_tail(tmp_path):
    path = tmp_path / "alps.journal"
    j = FileJournal(str(path), fsync=False)
    for i in range(3):
        j.append(payload(i))
    j.close()
    with open(path, "ab") as fh:
        fh.write(b"ALPSJ1 3 deadbeef {\"tor")  # crash mid-write
    j2 = FileJournal(str(path), fsync=False)
    rec = j2.recover()
    assert rec.snapshot == payload(2)
    assert rec.discarded_bytes > 0
    j2.close()
