"""Plane chaos suite: episode kinds, nine invariants, determinism."""

from __future__ import annotations

import pytest

from repro.resilience.chaos import (
    PLANE_CELLS,
    PLANE_KINDS,
    audit_plane_partition,
    episode_from_payload,
    episode_payload,
    plane_episode_plan,
    plane_episode_tree,
    run_chaos_campaign,
    run_chaos_episode,
    run_plane_episode,
)
from repro.units import sec

#: Small episode shape shared by the tests (seconds, not minutes).
FAST = dict(cycles=15, warmup_cycles=2)

#: The nine plane-suite invariants, in canonical report order.
PLANE_INVARIANTS = (
    "no_lost_process",
    "no_wedged_process",
    "cpu_conservation",
    "bounded_fairness",
    "agent_liveness",
    "bounded_timer_slip",
    "degrade_recover_roundtrip",
    "no_orphaned_subtree",
    "migration_atomicity",
)


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------
def test_plane_plan_kinds_pin_their_faults():
    crash = plane_episode_plan(
        "crash", 0.1, horizon_us=sec(12), restart_budget=5
    )
    assert [c.time_us for c in crash.cell_crashes] == [sec(4), sec(8)]
    assert {c.cell for c in crash.cell_crashes} == {0, 1}
    assert crash.journal_write_fail_prob == pytest.approx(0.1)
    assert crash.journal_torn_write_prob == pytest.approx(0.05)

    tear = plane_episode_plan(
        "tear", 0.0, horizon_us=sec(12), restart_budget=5
    )
    assert [t.crash for t in tear.migration_tears] == [True, False]
    assert not tear.cell_crashes
    assert tear.journal_write_fail_prob == 0.0

    rehome = plane_episode_plan(
        "rehome", 0.0, horizon_us=sec(16), restart_budget=3
    )
    assert len(rehome.cell_crashes) == 5  # budget + 2: must exhaust
    assert {c.cell for c in rehome.cell_crashes} == {0}
    # Every pinned fault lands before the settle window.
    assert all(c.time_us < (3 * sec(16)) // 4 for c in rehome.cell_crashes)

    with pytest.raises(ValueError):
        plane_episode_plan("flood", 0.0, horizon_us=sec(12), restart_budget=5)


# ---------------------------------------------------------------------------
# Episode kinds: all nine invariants hold under injected faults
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kind", PLANE_KINDS)
def test_plane_episode_passes_all_nine_invariants(kind):
    ep = run_plane_episode(
        3, 0.05, plane_kind=kind, restart_budget=2, **FAST
    )
    assert ep.suite == "plane"
    assert ep.plane_kind == kind
    assert ep.cells == PLANE_CELLS
    assert tuple(r.name for r in ep.invariants) == PLANE_INVARIANTS
    assert ep.ok, [r for r in ep.invariants if not r.ok]


def test_crash_episode_restarts_within_budget():
    ep = run_plane_episode(
        3, 0.05, plane_kind="crash", restart_budget=2, **FAST
    )
    assert ep.supervisor_restarts == 2  # the two pinned cell crashes
    assert ep.dead_cells == 0 and ep.rehomes == 0
    assert ep.journal_writes_lost > 0  # cell journals took real faults
    assert not ep.degraded


def test_tear_episode_salvages_both_tear_modes():
    ep = run_plane_episode(
        3, 0.05, plane_kind="tear", restart_budget=2, **FAST
    )
    assert ep.tears == 2  # one crash-mode, one exception-mode
    # Both leave an uncommitted intent behind (the exception-mode
    # rollback happens before the commit record), so both salvage.
    assert ep.salvages == 2
    assert ep.dead_cells == 0


def test_rehome_episode_kills_a_cell_and_rehomes_it():
    ep = run_plane_episode(
        3, 0.05, plane_kind="rehome", restart_budget=2, **FAST
    )
    assert ep.dead_cells == 1
    assert ep.rehomes >= 1
    assert ep.degraded  # a dead cell is a degraded plane
    assert ep.ok  # ... but every invariant still holds


def test_fault_free_plane_episode_keeps_pinned_faults_only():
    ep = run_plane_episode(
        3, 0.0, plane_kind="crash", restart_budget=2, **FAST
    )
    assert ep.supervisor_restarts == 2  # pinned crashes still fire
    assert ep.journal_writes_lost == 0  # rate-driven faults do not
    assert ep.journal_writes_torn == 0
    assert ep.ok


def test_plane_episode_is_deterministic_and_roundtrips():
    a = run_plane_episode(7, 0.05, plane_kind="tear", **FAST)
    b = run_plane_episode(7, 0.05, plane_kind="tear", **FAST)
    assert episode_payload(a) == episode_payload(b)
    assert episode_from_payload(episode_payload(a)) == a


def test_run_chaos_episode_dispatches_the_plane_suite():
    ep = run_chaos_episode(
        3, 0.0, suite="plane", plane_kind="rehome", restart_budget=2, **FAST
    )
    assert ep.suite == "plane" and ep.plane_kind == "rehome"
    with pytest.raises(ValueError):
        run_plane_episode(0, 0.0, plane_kind="flood", **FAST)


# ---------------------------------------------------------------------------
# Partition audit: catches real damage
# ---------------------------------------------------------------------------
def test_partition_audit_is_clean_on_a_healthy_plane():
    from repro.alps.config import AlpsConfig
    from repro.sharetree import ShardedAlpsPlane
    from repro.units import ms

    plane = ShardedAlpsPlane(
        plane_episode_tree(), AlpsConfig(quantum_us=ms(10)), cells=3, seed=0
    )
    plane.run_until(sec(1))
    assert audit_plane_partition(plane) == ([], [])


def test_partition_audit_flags_lost_split_and_duplicated_sids():
    from repro.alps.config import AlpsConfig
    from repro.sharetree import ShardedAlpsPlane
    from repro.units import ms

    plane = ShardedAlpsPlane(
        plane_episode_tree(), AlpsConfig(quantum_us=ms(10)), cells=3, seed=0
    )
    plane.run_until(sec(1))
    kapi = plane.kernel.kapi
    # Strand one leaf outside every cell: atomicity violation.
    src = plane.cell_of_sid(0)
    subject = plane.agents[src].release_subject(0, kapi)
    orphans, atomic = audit_plane_partition(plane)
    assert any("sid 0 owned by no cell" in v for v in atomic)
    # Its sibling (sid 1) is still on the source cell, so tenant t0 is
    # now... whole-but-short; re-adopting into a *different* cell splits
    # the subtree across cells: orphan violation.
    other = next(c for c in plane.agents if c != src)
    plane.agents[other].adopt_subject(subject, kapi)
    orphans, atomic = audit_plane_partition(plane)
    assert any("subtree t0 split across cells" in v for v in orphans)
    assert not any("owned by no cell" in v for v in atomic)


# ---------------------------------------------------------------------------
# Campaign plumbing
# ---------------------------------------------------------------------------
def test_plane_campaign_rotates_kinds_and_is_deterministic():
    r1 = run_chaos_campaign(
        0, suite="plane", episodes=3, rates=(0.05,), restart_budget=2, **FAST
    )
    r2 = run_chaos_campaign(
        0, suite="plane", episodes=3, rates=(0.05,), restart_budget=2, **FAST
    )
    assert r1.format_table() == r2.format_table()
    assert [ep.plane_kind for ep in r1.episodes] == list(PLANE_KINDS)
    assert all(ep.suite == "plane" for ep in r1.episodes)
    assert r1.ok
    table = r1.format_table()
    # The plane columns render: kind names and the re-home census.
    assert "kind" in table and "rehome" in table
    for kind in PLANE_KINDS:
        assert kind in table
