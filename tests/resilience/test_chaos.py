"""Chaos campaign machinery: determinism, invariants, report surface."""

from __future__ import annotations

import pytest

from repro.errors import InvariantViolation
from repro.resilience.chaos import (
    ChaosReport,
    episode_from_payload,
    episode_payload,
    episode_plan,
    run_chaos_campaign,
    run_chaos_episode,
)
from repro.resilience.invariants import InvariantResult
from repro.units import sec

#: Small episode shape shared by the tests (seconds, not minutes).
FAST = dict(cycles=20, warmup_cycles=2)


def test_episode_plan_adds_journal_faults_and_pinned_crashes():
    plan = episode_plan(0.1, seed=3, horizon_us=sec(10))
    assert plan.journal_write_fail_prob == pytest.approx(0.1)
    assert plan.journal_torn_write_prob == pytest.approx(0.05)
    assert [c.time_us for c in plan.agent_crashes] == [
        sec(10) // 3,
        2 * sec(10) // 3,
    ]
    # The fault-free point stays genuinely fault-free.
    assert episode_plan(0.0, seed=3, horizon_us=sec(10)).is_null


def test_episode_is_deterministic():
    a = run_chaos_episode(7, 0.05, **FAST)
    b = run_chaos_episode(7, 0.05, **FAST)
    assert episode_payload(a) == episode_payload(b)


def test_episode_exercises_journaled_recovery():
    ep = run_chaos_episode(0, 0.05, **FAST)
    assert ep.restarts == 2  # the two pinned crashes
    assert ep.journal_recoveries == 2
    assert ep.recovery_fallbacks == 0
    assert ep.journal_writes_lost > 0
    assert len(ep.invariants) == 7
    assert ep.ok


def test_fault_free_episode_is_clean():
    ep = run_chaos_episode(0, 0.0, **FAST)
    assert ep.restarts == 0
    assert ep.journal_writes_lost == 0
    assert ep.ok
    assert ep.error_pct < 8.0


def test_payload_roundtrip_is_exact():
    ep = run_chaos_episode(1, 0.02, **FAST)
    assert episode_from_payload(episode_payload(ep)) == ep


def test_campaign_is_deterministic_and_seed_sensitive():
    r1 = run_chaos_campaign(0, episodes=2, rates=(0.05,), **FAST)
    r2 = run_chaos_campaign(0, episodes=2, rates=(0.05,), **FAST)
    assert r1.format_table() == r2.format_table()
    r3 = run_chaos_campaign(1, episodes=2, rates=(0.05,), **FAST)
    assert [ep.seed for ep in r3.episodes] != [ep.seed for ep in r1.episodes]


def test_campaign_validates_arguments():
    with pytest.raises(ValueError):
        run_chaos_campaign(0, episodes=0)
    with pytest.raises(ValueError):
        run_chaos_campaign(0, rates=())


def test_report_violations_and_raise():
    ep = run_chaos_episode(0, 0.0, **FAST)
    bad = ep.__class__(
        **{
            **episode_payload(ep),
            "invariants": (
                InvariantResult("bounded_fairness", False, "err 99% vs 8%"),
            ),
        }
    )
    report = ChaosReport(campaign_seed=0, episodes=[ep, bad])
    assert not report.ok
    assert report.violations() == [(1, "bounded_fairness", "err 99% vs 8%")]
    with pytest.raises(InvariantViolation) as exc:
        report.raise_on_violation()
    assert exc.value.violations == [(1, "bounded_fairness", "err 99% vs 8%")]
    assert "FAIL" in report.format_table()
    clean = ChaosReport(campaign_seed=0, episodes=[ep])
    clean.raise_on_violation()  # no-op
    assert "PASS" in clean.format_table()
