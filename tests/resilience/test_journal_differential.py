"""Schedule invisibility of the crash-safety stack.

Journaling appends one snapshot per quantum and the supervision wrapper
monitors every activation — neither may perturb the schedule: with no
fault plan, a run with the full resilience stack attached must produce
byte-identical observable behavior (cycle log, event trace, event
count, final clock) to a run without it, over the Table 2 workload
matrix and seeds 0–2.
"""

from __future__ import annotations

import pytest

from repro.perf.differential import TABLE2_SIZES, fingerprint_run
from repro.units import sec
from repro.workloads.shares import DISTRIBUTIONS, workload_shares

#: Shorter horizon than the strict-vs-optimized goldens: the matrix is
#: crossed with seeds, and a second of simulated time already covers
#: several hundred quanta of journal appends per cell.
HORIZON_US = sec(1)


@pytest.mark.parametrize("model", DISTRIBUTIONS)
@pytest.mark.parametrize("n", TABLE2_SIZES)
@pytest.mark.parametrize("seed", (0, 1, 2))
def test_resilience_stack_is_schedule_invisible(model, n, seed):
    shares = workload_shares(model, n)
    bare = fingerprint_run(shares, seed=seed, horizon_us=HORIZON_US)
    stacked = fingerprint_run(
        shares, seed=seed, horizon_us=HORIZON_US, resilience=True
    )
    assert bare == stacked, (
        f"resilience stack changed the schedule for {model} n={n} "
        f"seed={seed}: {bare.digest()} != {stacked.digest()}"
    )
