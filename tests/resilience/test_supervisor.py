"""Supervisor policy state machine: backoff, budget, heartbeats."""

from __future__ import annotations

import pytest

from repro.errors import RestartBudgetExhausted, SchedulerConfigError
from repro.obs.observer import Observer
from repro.resilience.supervisor import (
    RestartPolicy,
    Supervisor,
    SupervisorState,
)
from repro.units import ms


def test_policy_rejects_bad_tunables():
    with pytest.raises(SchedulerConfigError):
        RestartPolicy(initial_backoff_us=-1)
    with pytest.raises(SchedulerConfigError):
        RestartPolicy(backoff_multiplier=0.5)
    with pytest.raises(SchedulerConfigError):
        RestartPolicy(initial_backoff_us=100, max_backoff_us=50)
    with pytest.raises(SchedulerConfigError):
        RestartPolicy(restart_budget=-1)
    with pytest.raises(SchedulerConfigError):
        RestartPolicy(heartbeat_timeout_quanta=0)
    with pytest.raises(SchedulerConfigError):
        Supervisor(RestartPolicy(), quantum_us=0)


def test_backoff_grows_exponentially_and_caps():
    policy = RestartPolicy(
        initial_backoff_us=100,
        backoff_multiplier=2.0,
        max_backoff_us=350,
        restart_budget=10,
        backoff_jitter=0.0,
    )
    sup = Supervisor(policy, quantum_us=ms(10))
    backoffs = [sup.on_failure(now).backoff_us for now in (0, 1, 2, 3)]
    assert backoffs == [100, 200, 350, 350]
    assert sup.state is SupervisorState.RESTARTING
    assert sup.restarts == 4


def test_backoff_jitter_is_seeded_and_bounded():
    policy = RestartPolicy(
        initial_backoff_us=1000,
        backoff_multiplier=2.0,
        max_backoff_us=4000,
        restart_budget=10,
        backoff_jitter=0.25,
    )

    def draws(seed: int, label: str = "alps") -> list[int]:
        sup = Supervisor(policy, quantum_us=ms(10), seed=seed, label=label)
        return [sup.on_failure(now).backoff_us for now in range(4)]

    first = draws(7)
    # Deterministic under the seed: same seed, same schedule.
    assert draws(7) == first
    # Different seeds (and different labels) draw independently.
    assert draws(8) != first
    assert draws(7, label="other") != first
    # Jitter only ever adds, within the configured fraction of the base.
    for got, base in zip(first, [1000, 2000, 4000, 4000]):
        assert base <= got <= int(base * 1.25)
    # Past the cap the base stops growing but jitter keeps restarts
    # decorrelated (overwhelmingly likely to differ under any seed).
    assert first[2] != first[3]


def test_policy_rejects_bad_jitter():
    with pytest.raises(SchedulerConfigError):
        RestartPolicy(backoff_jitter=-0.1)
    with pytest.raises(SchedulerConfigError):
        RestartPolicy(backoff_jitter=1.5)


def test_budget_exhaustion_escalates_to_degraded():
    sup = Supervisor(RestartPolicy(restart_budget=2), quantum_us=ms(10))
    sup.on_failure(0)
    sup.on_failure(1)
    with pytest.raises(RestartBudgetExhausted) as exc:
        sup.on_failure(2)
    assert exc.value.restarts == 2
    assert exc.value.budget == 2
    assert sup.degraded
    assert sup.stood_down_at == 2
    # Once degraded, every further failure stays terminal.
    with pytest.raises(RestartBudgetExhausted):
        sup.on_failure(3)


def test_zero_budget_never_grants_a_restart():
    sup = Supervisor(RestartPolicy(restart_budget=0), quantum_us=ms(10))
    with pytest.raises(RestartBudgetExhausted):
        sup.on_failure(0)
    assert sup.restarts == 0
    assert sup.degraded


def test_heartbeat_gap_detection():
    sup = Supervisor(
        RestartPolicy(heartbeat_timeout_quanta=2), quantum_us=ms(10)
    )
    sup.heartbeat(0)
    sup.heartbeat(ms(10))  # one quantum: fine
    sup.heartbeat(ms(30))  # exactly the limit: fine
    assert sup.missed_heartbeats == 0
    sup.heartbeat(ms(60))  # 30ms gap > 20ms limit
    assert sup.missed_heartbeats == 1
    assert sup.heartbeats == 4


def test_recovered_resets_state_and_heartbeat_baseline():
    sup = Supervisor(RestartPolicy(), quantum_us=ms(10))
    sup.heartbeat(0)
    sup.on_failure(ms(10))
    sup.on_recovered(ms(500), journaled=True)
    assert sup.state is SupervisorState.RUNNING
    # The gap was downtime, not a missed heartbeat.
    sup.heartbeat(ms(510))
    assert sup.missed_heartbeats == 0


def test_transitions_are_emitted_as_events():
    obs = Observer()
    sup = Supervisor(
        RestartPolicy(restart_budget=1),
        quantum_us=ms(10),
        observer=obs,
        label="t",
    )
    sup.on_failure(5)
    sup.on_recovered(10, journaled=False)
    with pytest.raises(RestartBudgetExhausted):
        sup.on_failure(20)
    sup.stand_down(21, resumed=3)
    kinds = [ev.kind for ev in obs.events]
    assert "supervisor.restart" in kinds
    assert "supervisor.recovered" in kinds
    assert "supervisor.degraded" in kinds
    assert "supervisor.stand_down" in kinds
