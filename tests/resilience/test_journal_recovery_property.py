"""Property tests: journal recovery under arbitrary damage.

The torn-write claim, stated as properties rather than examples:

* truncating a journal at *any* byte offset — the exact crash model of
  an interrupted ``write(2)`` — never raises, never yields a payload
  that was not appended, and loses at most the final record;
* arbitrary byte corruption (Hypothesis-driven) never raises and never
  yields a forged payload: whatever recovery returns passed a CRC, so
  it is something that was actually appended.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.resilience.journal import encode_record, recover_journal


def build_journal(n: int) -> tuple[bytes, list[dict]]:
    payloads = [{"kind": "snapshot", "n": i, "tc": i * 17} for i in range(n)]
    data = b"".join(encode_record(i, p) for i, p in enumerate(payloads))
    return data, payloads


def test_truncation_at_every_byte_offset_is_lossless_up_to_one_record():
    """Exhaustive: every possible torn-tail length of a 6-record journal."""
    data, payloads = build_journal(6)
    record_ends = []
    pos = 0
    for i in range(6):
        pos += len(encode_record(i, payloads[i]))
        record_ends.append(pos)
    for cut in range(len(data) + 1):
        rec = recover_journal(data[:cut])
        # Records wholly inside the prefix survive; the one the cut
        # tears is the only loss.
        complete = sum(1 for end in record_ends if end <= cut)
        assert rec.records == complete
        if complete:
            assert rec.snapshot == payloads[complete - 1]
            assert rec.last_seq == complete - 1
        else:
            assert rec.snapshot is None
            assert rec.last_seq == -1


@given(
    n=st.integers(min_value=1, max_value=8),
    cut=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_truncated_journal_recovers_a_real_payload(n: int, cut: int):
    data, payloads = build_journal(n)
    rec = recover_journal(data[: min(cut, len(data))])
    if rec.snapshot is not None:
        assert rec.snapshot in payloads
        assert rec.snapshot == payloads[rec.last_seq]


@given(
    n=st.integers(min_value=1, max_value=6),
    edits=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000),
            st.integers(min_value=0, max_value=255),
        ),
        max_size=8,
    ),
)
@settings(max_examples=80, deadline=None)
def test_arbitrary_corruption_never_raises_or_forges(n: int, edits):
    """Bit rot anywhere in the journal: recovery stays total and honest."""
    data, payloads = build_journal(n)
    buf = bytearray(data)
    for offset, value in edits:
        if buf:
            buf[offset % len(buf)] = value
    rec = recover_journal(bytes(buf))
    if rec.snapshot is not None:
        # A surviving CRC means the record is genuine, byte for byte.
        assert rec.snapshot in payloads
    assert rec.valid_bytes + rec.discarded_bytes == len(buf)


@given(
    n=st.integers(min_value=2, max_value=6),
    torn_index=st.integers(min_value=0, max_value=5),
    keep=st.integers(min_value=1, max_value=80),
)
@settings(max_examples=60, deadline=None)
def test_mid_journal_torn_append_loses_only_that_record(
    n: int, torn_index: int, keep: int
):
    """A torn append *between* intact appends (the fault injector's torn
    write: later appends land after the partial bytes, on the same
    line).  Salvage recovery must still reach the newest record."""
    torn_index %= n
    payloads = [{"kind": "snapshot", "n": i} for i in range(n)]
    parts = []
    for i, p in enumerate(payloads):
        encoded = encode_record(i, p)
        if i == torn_index:
            encoded = encoded[: min(keep, len(encoded) - 1)]  # drop newline
        parts.append(encoded)
    rec = recover_journal(b"".join(parts))
    if torn_index == n - 1:
        assert rec.snapshot == payloads[n - 2]
    else:
        assert rec.snapshot == payloads[n - 1]
        assert rec.last_seq == n - 1
