"""The crash-recovery fidelity claim, as a fast tier-1 test.

The full sweep lives in ``benchmarks/bench_resilience_recovery.py``;
this keeps a single-seed version of the same assertion in the default
suite: a crashed-and-journaled run lands within a small bound of the
fault-free attained-CPU split, and strictly beats the PR 1 lossy
re-baseline path.
"""

from __future__ import annotations

from repro.alps.config import AlpsConfig
from repro.experiments.common import run_for_cycles
from repro.faults.plan import AgentCrash, FaultPlan
from repro.resilience.journal import MemoryJournal
from repro.units import ms
from repro.workloads.scenarios import build_controlled_workload

SHARES = (1, 2, 3, 4)
QUANTUM_US = ms(10)
CYCLES = 60
MAX_ERROR = 0.005  # absolute attained-fraction deviation


def _run(*, crash: bool, journaled: bool) -> list[float]:
    horizon_us = int(2 * (CYCLES + 5) * sum(SHARES) * QUANTUM_US)
    plan = None
    if crash:
        plan = FaultPlan(
            seed=0,
            horizon_us=horizon_us,
            agent_crashes=(AgentCrash(time_us=horizon_us // 3),),
        )
    cw = build_controlled_workload(
        list(SHARES),
        AlpsConfig(quantum_us=QUANTUM_US),
        seed=0,
        fault_plan=plan,
        journal=MemoryJournal() if journaled else None,
    )
    run_for_cycles(cw, CYCLES, max_sim_us=horizon_us, on_incomplete="ignore")
    cw.agent.shutdown(cw.kernel.kapi)
    kapi = cw.kernel.kapi
    usages = [kapi.getrusage(p.pid) for p in cw.workers]
    total = sum(usages)
    return [u / total for u in usages]


def test_journaled_recovery_preserves_the_attained_split():
    reference = _run(crash=False, journaled=False)
    journaled = _run(crash=True, journaled=True)
    lossy = _run(crash=True, journaled=False)
    j_dev = max(abs(a - b) for a, b in zip(journaled, reference))
    l_dev = max(abs(a - b) for a, b in zip(lossy, reference))
    assert j_dev <= MAX_ERROR, f"journaled deviation {j_dev:.6f}"
    assert j_dev < l_dev, f"journaled {j_dev:.6f} not better than {l_dev:.6f}"
