"""Table 2 share distributions."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchedulerConfigError
from repro.workloads.shares import (
    ShareDistribution,
    equal_shares,
    linear_shares,
    skewed_shares,
    workload_shares,
)


def test_table2_linear():
    assert linear_shares(5) == [1, 3, 5, 7, 9]
    assert linear_shares(10) == [1, 3, 5, 7, 9, 11, 13, 15, 17, 19]
    assert linear_shares(20)[-3:] == [35, 37, 39]


def test_table2_equal():
    assert equal_shares(5) == [5] * 5
    assert equal_shares(10) == [10] * 10
    assert equal_shares(20) == [20] * 20


def test_table2_skewed():
    assert skewed_shares(5) == [1, 1, 1, 1, 21]
    assert skewed_shares(10) == [1] * 9 + [91]
    assert skewed_shares(20) == [1] * 19 + [381]


def test_table2_totals_are_n_squared():
    for n in (5, 10, 20):
        for model in ShareDistribution:
            assert sum(workload_shares(model, n)) == n * n


def test_equal_with_custom_per_process():
    assert equal_shares(7, 5) == [5] * 7


def test_invalid_inputs():
    with pytest.raises(SchedulerConfigError):
        linear_shares(0)
    with pytest.raises(SchedulerConfigError):
        equal_shares(3, 0)


def test_skewed_single_process():
    assert skewed_shares(1) == [1]


@given(st.integers(min_value=1, max_value=500))
def test_totals_property(n):
    assert sum(linear_shares(n)) == n * n
    assert sum(equal_shares(n)) == n * n
    assert sum(skewed_shares(n)) == n * n
    assert all(s >= 1 for s in skewed_shares(n))
