"""Scenario builders."""

import pytest

from repro.alps.config import AlpsConfig
from repro.units import ms, sec
from repro.workloads.io_pattern import compute_sleep_behavior
from repro.workloads.scenarios import (
    build_controlled_workload,
    build_multi_alps_scenario,
)


def test_controlled_workload_wiring():
    cw = build_controlled_workload([1, 2, 3], AlpsConfig(quantum_us=ms(10)))
    assert len(cw.workers) == 3
    assert cw.shares == [1, 2, 3]
    assert cw.total_shares == 6
    assert cw.alps_proc.name == "alps"


def test_custom_behaviors_override_spinners():
    behaviors = [
        compute_sleep_behavior(ms(10), ms(10)),
        compute_sleep_behavior(ms(10), ms(10)),
    ]
    cw = build_controlled_workload(
        [1, 1], AlpsConfig(quantum_us=ms(10)), behaviors=behaviors
    )
    cw.engine.run_until(sec(1))
    # Both workers block periodically, so total CPU < elapsed.
    total = sum(cw.kernel.getrusage(w.pid) for w in cw.workers)
    assert total < sec(1) * 0.9


def test_overhead_fraction_positive_after_run():
    cw = build_controlled_workload([1, 1], AlpsConfig(quantum_us=ms(10)))
    cw.engine.run_until(sec(2))
    assert 0 < cw.overhead_fraction() < 0.02


def test_multi_alps_scenario_phased_starts():
    groups = [("A", (1, 2), 0), ("B", (3, 4), sec(1))]
    sc = build_multi_alps_scenario(groups, AlpsConfig(quantum_us=ms(10)))
    assert [g.label for g in sc.groups] == ["A", "B"]
    sc.engine.run_until(ms(500))
    # B hasn't started yet.
    b_usage = sum(sc.kernel.getrusage(w.pid) for w in sc.groups[1].workers)
    assert b_usage == 0
    a_usage = sum(sc.kernel.getrusage(w.pid) for w in sc.groups[0].workers)
    assert a_usage > 0
