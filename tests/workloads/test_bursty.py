"""Bursty workload behaviour."""

import numpy as np
import pytest

from repro.errors import SchedulerConfigError
from repro.kernel.kconfig import KernelConfig
from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.workloads.bursty import bursty_behavior


def test_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(SchedulerConfigError):
        bursty_behavior(rng, mean_burst_us=0, mean_idle_us=10)
    with pytest.raises(SchedulerConfigError):
        bursty_behavior(rng, mean_burst_us=10, mean_idle_us=-1)


def test_duty_fraction_approximates_demand():
    eng = Engine(seed=0)
    k = Kernel(eng, KernelConfig(ctx_switch_us=0))
    rng = eng.rng.stream("bursty")
    p = k.spawn(
        "b",
        bursty_behavior(rng, mean_burst_us=ms(30), mean_idle_us=ms(70)),
    )
    eng.run_until(sec(60))
    # Alone on the machine, achieved usage tracks the 30 % demand.
    frac = k.getrusage(p.pid) / sec(60)
    assert frac == pytest.approx(0.30, abs=0.06)


def test_pure_burst_without_idle_is_spinner():
    eng = Engine(seed=0)
    k = Kernel(eng, KernelConfig(ctx_switch_us=0))
    rng = eng.rng.stream("bursty")
    p = k.spawn("b", bursty_behavior(rng, mean_burst_us=ms(5), mean_idle_us=0))
    eng.run_until(sec(2))
    assert k.getrusage(p.pid) == pytest.approx(sec(2), abs=ms(2))


def test_deterministic_given_stream():
    def run():
        eng = Engine(seed=7)
        k = Kernel(eng)
        rng = eng.rng.stream("bursty")
        p = k.spawn(
            "b", bursty_behavior(rng, mean_burst_us=ms(10), mean_idle_us=ms(10))
        )
        eng.run_until(sec(5))
        return k.getrusage(p.pid)

    assert run() == run()
