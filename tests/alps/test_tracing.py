"""ALPS decision tracing."""

import pytest

from repro.alps.config import AlpsConfig
from repro.alps.tracing import attach_alps_trace
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload


@pytest.fixture(scope="module")
def traced_run():
    cw = build_controlled_workload([1, 3], AlpsConfig(quantum_us=ms(10)), seed=0)
    trace = attach_alps_trace(cw.agent)
    cw.engine.run_until(sec(5))
    return cw, trace


def test_trace_records_every_invocation(traced_run):
    cw, trace = traced_run
    # The final invocation may still be mid-flight when the run stops.
    assert abs(len(trace) - cw.agent.invocations) <= 1
    assert len(trace) > 100


def test_trace_cycle_count_matches_log(traced_run):
    cw, trace = traced_run
    assert trace.cycles() == len(cw.agent.cycle_log)


def test_small_share_subject_suspended_often(traced_run):
    cw, trace = traced_run
    assert trace.suspensions_of(0) > trace.suspensions_of(1)
    assert trace.suspensions_of(0) > 10


def test_measurement_counts_positive(traced_run):
    cw, trace = traced_run
    assert trace.measurements_of(0) > 0
    assert trace.measurements_of(1) > 0


def test_format_tail(traced_run):
    _cw, trace = traced_run
    text = trace.format(last=5)
    assert text.count("\n") == 4
    assert "measured[" in text
    assert "CYCLE" in text or trace.cycles() == 0
