"""ALPS agent state machine in isolation (fake kernel API).

Drives the agent's `next_action` by hand to pin down the phase
sequence, the cost charging, signal batching, and quantum-boundary
arithmetic — without a simulation in the loop.
"""

from __future__ import annotations

import math

import pytest

from repro.alps.agent import AlpsAgent
from repro.alps.config import AlpsConfig
from repro.alps.costs import CostModel
from repro.alps.subjects import ProcessSubject
from repro.errors import NoSuchProcessError
from repro.kernel.actions import Compute, Sleep
from repro.kernel.signals import SIGCONT, SIGSTOP

Q = 10_000


class FakeKapi:
    """Scriptable stand-in for the kernel API."""

    def __init__(self) -> None:
        self.now = 0
        self.rusage: dict[int, int] = {}
        self.blocked: dict[int, bool] = {}
        self.alive: dict[int, bool] = {}
        self.kills: list[tuple[int, int]] = []
        self.stopped: set[int] = set()

    def getrusage(self, pid: int) -> int:
        if not self.alive.get(pid, True):
            raise NoSuchProcessError(pid)
        return self.rusage.get(pid, 0)

    def is_blocked(self, pid: int) -> bool:
        return self.blocked.get(pid, False)

    def is_stopped(self, pid: int) -> bool:
        if not self.alive.get(pid, True):
            raise NoSuchProcessError(pid)
        return pid in self.stopped

    def kill(self, pid: int, signo: int) -> None:
        if not self.alive.get(pid, True):
            raise NoSuchProcessError(pid)
        self.kills.append((pid, signo))
        if signo == SIGSTOP:
            self.stopped.add(pid)
        elif signo == SIGCONT:
            self.stopped.discard(pid)

    def pid_exists(self, pid: int) -> bool:
        return self.alive.get(pid, True)

    def exit_count(self) -> int:
        # Derived from the scripted deaths: monotone as long as tests
        # never resurrect a pid (they don't — pids are not recycled).
        return sum(1 for alive in self.alive.values() if not alive)

    def pids_of_uid(self, uid: int) -> list[int]:
        return []


def make_agent(shares=(1, 1)):
    subjects = [
        ProcessSubject(sid=i, share=s, pid=100 + i) for i, s in enumerate(shares)
    ]
    return AlpsAgent(subjects, AlpsConfig(quantum_us=Q)), FakeKapi()


def test_phase_sequence_without_signals():
    agent, kapi = make_agent()
    # INIT: sleeps until the first boundary.
    act = agent.next_action(None, kapi)
    assert isinstance(act, Sleep) and act.duration_us == Q
    # Wake at the boundary: a Compute for timer + measurements.
    kapi.now = Q
    act = agent.next_action(None, kapi)
    assert isinstance(act, Compute)
    # First invocation: nobody eligible yet, so the compute is just the
    # timer-event cost (integer-accumulated).
    assert act.duration_us in (9, 10)
    # Apply: first invocation resumes everyone, but nothing was actually
    # stopped, so no signals -> straight back to sleep.
    kapi.now = Q + act.duration_us
    act = agent.next_action(None, kapi)
    assert isinstance(act, Sleep)
    assert kapi.now + act.duration_us == 2 * Q


def test_measurement_cost_scales_with_due_pids():
    agent, kapi = make_agent((1, 1, 1))
    agent.next_action(None, kapi)  # init
    kapi.now = Q
    agent.next_action(None, kapi)  # wake 1 (none due)
    kapi.now += 5
    agent.next_action(None, kapi)  # apply -> all eligible now
    kapi.now = 2 * Q
    act = agent.next_action(None, kapi)  # wake 2: 3 pids due
    expected = CostModel().quantum_cost(3)
    assert act.duration_us == pytest.approx(expected, abs=1)


def test_exhausted_subject_gets_sigstop_and_signal_cost():
    agent, kapi = make_agent((1, 5))
    agent.next_action(None, kapi)  # init
    kapi.now = Q
    agent.next_action(None, kapi)  # wake 1
    kapi.now += 1
    agent.next_action(None, kapi)  # apply: both become eligible
    kapi.now = 2 * Q
    agent.next_action(None, kapi)  # wake 2 (measure both)
    # Subject 0 consumed a full quantum since the last read.
    kapi.rusage[100] = Q
    kapi.now = 2 * Q + 60
    act = agent.next_action(None, kapi)  # apply
    assert isinstance(act, Compute)  # signal-delivery cost burst
    kapi.now += act.duration_us
    act = agent.next_action(None, kapi)  # deliver
    assert kapi.kills == [(100, SIGSTOP)]
    assert isinstance(act, Sleep)
    assert agent.signals_sent == 1


def test_resume_sends_sigcont_only_if_actually_stopped():
    agent, kapi = make_agent((1, 5))
    # Walk until the stop is delivered (as above).
    agent.next_action(None, kapi)
    kapi.now = Q
    agent.next_action(None, kapi)
    kapi.now += 1
    agent.next_action(None, kapi)
    kapi.now = 2 * Q
    agent.next_action(None, kapi)
    kapi.rusage[100] = Q
    kapi.now = 2 * Q + 60
    agent.next_action(None, kapi)
    kapi.now += 1
    agent.next_action(None, kapi)  # SIGSTOP delivered
    kapi.kills.clear()
    # Subject 1's measurement was postponed ~5 quanta; keep stepping
    # boundaries (its consumption reaching 5 Q ends the cycle, which
    # re-credits and resumes subject 0).
    kapi.rusage[101] = 5 * Q
    for k in range(3, 10):
        kapi.now = k * Q
        agent.next_action(None, kapi)  # wake
        kapi.now += 50
        act = agent.next_action(None, kapi)  # apply
        if isinstance(act, Compute):
            kapi.now += act.duration_us
            agent.next_action(None, kapi)  # deliver
        if kapi.kills:
            break
    assert (100, SIGCONT) in kapi.kills


def test_boundary_skipping_when_delayed():
    agent, kapi = make_agent()
    agent.next_action(None, kapi)  # init, epoch=0
    kapi.now = Q
    agent.next_action(None, kapi)  # wake
    # Work delayed for 3.5 quanta before completion.
    kapi.now = int(4.5 * Q)
    act = agent.next_action(None, kapi)  # apply
    assert isinstance(act, Sleep)
    assert kapi.now + act.duration_us == 5 * Q  # next future boundary


def test_dead_pid_measurement_is_dropped():
    agent, kapi = make_agent((1, 1))
    agent.next_action(None, kapi)
    kapi.now = Q
    agent.next_action(None, kapi)
    kapi.now += 1
    agent.next_action(None, kapi)  # both eligible
    kapi.alive[100] = False  # dies before next wake
    kapi.now = 2 * Q
    agent.next_action(None, kapi)  # wake: reap drops subject 0
    assert 0 not in agent.core.subjects
    kapi.now += 30
    act = agent.next_action(None, kapi)  # apply must not raise
    assert isinstance(act, (Sleep, Compute))


def test_invocation_and_read_counters():
    agent, kapi = make_agent((2, 2))
    agent.next_action(None, kapi)
    for k in range(1, 6):
        kapi.now = k * Q
        agent.next_action(None, kapi)  # wake
        kapi.now += 10
        act = agent.next_action(None, kapi)  # apply
        if isinstance(act, Compute):  # pending signals
            kapi.now += act.duration_us
            agent.next_action(None, kapi)
    assert agent.invocations == 5
    assert agent.reads >= 2
