"""Sampling-latency instrumentation: prompt below breakdown, not above."""

import numpy as np
import pytest

from repro.alps.config import AlpsConfig
from repro.experiments.common import run_for_cycles
from repro.units import SEC, ms, sec
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.shares import equal_shares


def _delays(n, *, horizon_s=60):
    cw = build_controlled_workload(
        equal_shares(n, 5), AlpsConfig(quantum_us=ms(10)), seed=0
    )
    cw.engine.run_until(sec(horizon_s))
    return np.asarray(cw.agent.sampling_delays_us)


def test_sampling_is_prompt_below_breakdown():
    """Below the N≈40 threshold the agent samples within a fraction of
    a quantum of each boundary (its work plus dispatch, tens of µs)."""
    d = _delays(10)
    assert d.size > 1000
    assert np.median(d) < 500
    assert np.percentile(d, 99) < ms(5)


def test_sampling_delay_explodes_past_breakdown():
    """Past the threshold the agent suffers occasional multi-second
    parkings and misses most quantum boundaries outright (§4.2's 'may
    not be scheduled promptly')."""
    below = _delays(20, horizon_s=40)
    above = _delays(80, horizon_s=40)
    # Worst-case parking: bounded below threshold, seconds above it.
    assert below.max() < ms(5)
    assert above.max() > 100 * ms(10)
    # Boundary coverage: ~every quantum serviced below threshold, most
    # missed above it (invocations collapse while parked).
    expected = 40 * SEC // ms(10)
    assert below.size > 0.9 * expected
    assert above.size < 0.5 * expected


def test_delay_equals_work_plus_dispatch_for_lone_group():
    """With a single worker, ALPS is never contended: each delay is just
    its own modelled work."""
    cw = build_controlled_workload([1], AlpsConfig(quantum_us=ms(10)), seed=0)
    cw.engine.run_until(sec(5))
    d = np.asarray(cw.agent.sampling_delays_us)
    assert d.max() < 200  # timer + one measurement + dispatch slivers
