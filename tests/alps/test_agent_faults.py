"""Agent robustness against subject death, lost signals, stalls, and
crash-with-restart — driven by hand against the scriptable FakeKapi.

Complements tests/faults/ (full simulations): here each recovery path
is stepped through phase by phase so the exact bookkeeping is pinned.
"""

from __future__ import annotations

from repro.alps.agent import AlpsAgent
from repro.alps.config import AlpsConfig
from repro.alps.state import Eligibility
from repro.alps.subjects import ProcessSubject, UserSubject
from repro.kernel.actions import Compute, Sleep
from repro.kernel.signals import SIGCONT, SIGSTOP
from tests.alps.test_agent_unit import FakeKapi, Q, make_agent


def _walk_to_second_wake(agent, kapi):
    """INIT → wake1 → apply1 (everyone becomes eligible) → wake2.

    After this the agent is MEASURING with every pid in ``_due``.
    """
    agent.next_action(None, kapi)  # init
    kapi.now = Q
    agent.next_action(None, kapi)  # wake 1 (nobody due yet)
    kapi.now += 1
    agent.next_action(None, kapi)  # apply 1
    kapi.now = 2 * Q
    return agent.next_action(None, kapi)  # wake 2: all pids due


def test_death_between_begin_and_complete_quantum():
    """A pid dying after measurement selection but before the reads must
    not raise, not charge, and leave no stale per-pid state."""
    agent, kapi = make_agent((1, 1))
    _walk_to_second_wake(agent, kapi)
    assert any(100 in pids for _, pids in agent._due)
    kapi.alive[100] = False  # dies mid-measurement
    kapi.now += 20
    act = agent.next_action(None, kapi)  # apply — must not raise
    assert isinstance(act, (Sleep, Compute))
    assert 100 not in agent._last_read
    assert 100 not in agent._stopped_pids
    # The subject itself is reaped at the next wake.
    kapi.now = 3 * Q
    agent.next_action(None, kapi)
    assert 0 not in agent.core.subjects
    assert 1 in agent.core.subjects


def test_last_process_of_last_subject_dying():
    """Even the *final* subject's death must be survivable (the core
    goes empty; no KeyError, no phantom cycles)."""
    agent, kapi = make_agent((1,))
    agent.next_action(None, kapi)  # init
    kapi.now = Q
    agent.next_action(None, kapi)  # wake 1
    kapi.now += 1
    agent.next_action(None, kapi)  # apply 1
    kapi.alive[100] = False
    kapi.now = 2 * Q
    act = agent.next_action(None, kapi)  # wake: reap the only subject
    assert isinstance(act, Compute)
    assert agent.core.subjects == {}
    assert agent.subjects == {}
    kapi.now += 10
    act = agent.next_action(None, kapi)  # apply on the empty core
    assert isinstance(act, Sleep)


def test_all_subjects_dead_agent_idles_cleanly():
    agent, kapi = make_agent((1, 2))
    agent.next_action(None, kapi)  # init
    kapi.now = Q
    agent.next_action(None, kapi)
    kapi.now += 1
    agent.next_action(None, kapi)
    kapi.alive[100] = False
    kapi.alive[101] = False
    kapi.now = 2 * Q
    agent.next_action(None, kapi)  # wake reaps both
    assert agent.subjects == {}
    cycles_before = len(agent.cycle_log)
    for k in range(3, 7):
        kapi.now += 10
        act = agent.next_action(None, kapi)  # apply
        assert isinstance(act, Sleep)
        assert kapi.now + act.duration_us == k * Q  # keeps its beat
        kapi.now = k * Q
        act = agent.next_action(None, kapi)  # wake
        assert isinstance(act, Compute)
    # An empty core must not log phantom cycles while idling.
    assert len(agent.cycle_log) == cycles_before
    assert agent.signals_sent == 0


def test_reap_cleans_all_per_pid_maps():
    agent, kapi = make_agent((1, 1))
    _walk_to_second_wake(agent, kapi)
    assert 100 in agent._last_read
    kapi.now += 20
    agent.next_action(None, kapi)  # apply
    agent._stopped_pids.add(100)  # as if previously suspended
    kapi.alive[100] = False
    kapi.now = 3 * Q
    agent.next_action(None, kapi)  # wake → reap
    assert 0 not in agent.subjects
    assert 100 not in agent._last_read
    assert 100 not in agent._stopped_pids


def test_lost_sigstop_is_resent_within_budget():
    class DroppingKapi(FakeKapi):
        """Loses every SIGSTOP in transit (delivery never observed)."""

        def kill(self, pid, signo):
            self.kills.append((pid, signo))
            if signo == SIGCONT:
                self.stopped.discard(pid)

    agent = AlpsAgent(
        [ProcessSubject(sid=0, share=1, pid=100),
         ProcessSubject(sid=1, share=5, pid=101)],
        AlpsConfig(quantum_us=Q, signal_retry_budget=1),
    )
    kapi = DroppingKapi()
    agent.next_action(None, kapi)  # init
    kapi.now = Q
    agent.next_action(None, kapi)
    kapi.now += 1
    agent.next_action(None, kapi)
    kapi.now = 2 * Q
    agent.next_action(None, kapi)
    kapi.rusage[100] = Q  # subject 0 exhausted its allowance
    kapi.now = 2 * Q + 60
    agent.next_action(None, kapi)  # apply → queues SIGSTOP
    kapi.now += 1
    agent.next_action(None, kapi)  # deliver: send, verify, re-send
    assert kapi.kills.count((100, SIGSTOP)) == 2  # original + 1 retry
    assert agent.signal_retries == 1


def test_stall_rebaselines_instead_of_catchup_burst():
    agent, kapi = make_agent((1, 1))
    agent.next_action(None, kapi)  # init: sleeps toward boundary Q
    # The agent is descheduled for 5 quanta; meanwhile pid 100 burns CPU.
    kapi.rusage[100] = 5 * Q
    kapi.now = 6 * Q
    agent.next_action(None, kapi)  # wake
    assert agent.missed_boundaries == 5
    assert agent.rebaselines == 1  # 5 > default tolerance of 2
    # The outage consumption was forgiven, not charged as one burst.
    assert agent._last_read[100] == 5 * Q
    kapi.now += 20
    agent.next_action(None, kapi)  # apply
    assert agent.signals_sent == 0  # no catch-up suspension storm


def test_small_delays_within_tolerance_do_not_rebaseline():
    agent, kapi = make_agent((1, 1))
    agent.next_action(None, kapi)  # init
    kapi.now = Q + Q // 2  # woke half a quantum late: 0 full boundaries
    agent.next_action(None, kapi)
    assert agent.missed_boundaries == 0
    assert agent.rebaselines == 0


def test_restart_reconciles_stop_set_from_kernel_truth():
    agent, kapi = make_agent((1, 1))
    agent.next_action(None, kapi)  # init
    kapi.stopped.add(101)  # wedged while the agent was down
    agent.restart()
    assert agent.restarts == 1
    assert agent._last_read == {} and agent._stopped_pids == set()
    kapi.now = Q
    act = agent.next_action(None, kapi)  # reconcile pass
    assert isinstance(act, Compute)
    kapi.now += 10
    act = agent.next_action(None, kapi)  # deliver the healing SIGCONT
    assert (101, SIGCONT) in kapi.kills
    assert 101 not in kapi.stopped
    assert isinstance(act, Sleep)


def test_shutdown_resumes_by_kernel_truth():
    agent, kapi = make_agent((1, 1))
    agent.next_action(None, kapi)  # init
    kapi.stopped.add(100)  # stopped with no agent bookkeeping
    resumed = agent.shutdown(kapi)
    assert resumed == 1
    assert (100, SIGCONT) in kapi.kills
    assert kapi.stopped == set()
    assert agent._stopped_pids == set()


def test_wedge_healing_resumes_eligible_stopped_pid():
    agent, kapi = make_agent((1, 1))
    _walk_to_second_wake(agent, kapi)
    # Both subjects are eligible, yet pid 100 sits stopped (a SIGCONT
    # was lost, or a delayed SIGSTOP landed late).
    kapi.stopped.add(100)
    kapi.now += 20
    act = agent.next_action(None, kapi)  # apply: healing queues SIGCONT
    assert isinstance(act, Compute)
    kapi.now += act.duration_us
    agent.next_action(None, kapi)  # deliver
    assert (100, SIGCONT) in kapi.kills
    assert 100 not in kapi.stopped
    assert agent.heals == 1


def test_discovery_stop_is_charged_signal_cost():
    """A pid discovered under a suspended principal is stopped at
    discovery — and that kill(2) must show up in the cost accounting."""

    class UidKapi(FakeKapi):
        def __init__(self):
            super().__init__()
            self.uid_pids: dict[int, list[int]] = {}

        def pids_of_uid(self, uid):
            return list(self.uid_pids.get(uid, []))

    cfg = AlpsConfig(quantum_us=Q)
    agent = AlpsAgent(
        [UserSubject(sid=0, share=1, uid=7),
         ProcessSubject(sid=1, share=1, pid=200)],
        cfg,
    )
    kapi = UidKapi()
    kapi.uid_pids[7] = [300]
    agent.next_action(None, kapi)  # init enumerates uid 7
    # Principal 0 is currently suspended; a new process appears.
    agent.core.subjects[0].state = Eligibility.INELIGIBLE
    kapi.uid_pids[7] = [300, 301]
    cost = agent._refresh_principals(kapi)
    assert (301, SIGSTOP) in kapi.kills
    assert 301 in agent._stopped_pids
    assert cost >= cfg.costs.principal_refresh_us + cfg.costs.signal_us
