"""``AlpsAgent._retry_read``: budget exhaustion and its accounting.

Companion to tests/hostos/test_controller_robustness.py, which pins the
same discrimination (transient vs gone) for the live controller.
"""

from __future__ import annotations

from repro.alps.agent import AlpsAgent
from repro.alps.config import AlpsConfig
from repro.alps.subjects import ProcessSubject
from repro.errors import NoSuchProcessError, TransientReadError

Q = 10_000


class RetryKapi:
    """getrusage scripted per call; everything else inert."""

    def __init__(self, script) -> None:
        self.now = 0
        self.script = list(script)
        self.calls = 0

    def getrusage(self, pid: int) -> int:
        self.calls += 1
        step = self.script.pop(0) if self.script else 0
        if isinstance(step, Exception):
            raise step
        return step


def make_agent(budget: int) -> AlpsAgent:
    return AlpsAgent(
        [ProcessSubject(sid=0, share=1, pid=100)],
        AlpsConfig(quantum_us=Q, read_retry_budget=budget),
    )


def test_retry_read_succeeds_within_budget():
    agent = make_agent(budget=3)
    kapi = RetryKapi([TransientReadError(100), 4321])
    assert agent._retry_read(kapi, 100) == 4321
    assert agent.read_retries == 2
    assert agent.read_failures == 0
    # Each retry's CPU is owed to the next quantum, never free.
    assert agent._deferred_cost_us > 0


def test_retry_read_exhaustion_returns_none_and_counts_failure():
    agent = make_agent(budget=2)
    agent._last_read[100] = 777  # pre-existing baseline
    kapi = RetryKapi([TransientReadError(100)] * 10)
    assert agent._retry_read(kapi, 100) is None
    assert kapi.calls == 2  # exactly the budget, no unbounded spinning
    assert agent.read_retries == 2
    assert agent.read_failures == 1
    # The baseline survives: the next successful read charges the full
    # elapsed interval — a skipped measurement defers, never loses.
    assert agent._last_read[100] == 777


def test_retry_read_zero_budget_fails_immediately():
    agent = make_agent(budget=0)
    kapi = RetryKapi([1234])
    assert agent._retry_read(kapi, 100) is None
    assert kapi.calls == 0
    assert agent.read_failures == 1


def test_retry_read_discriminates_gone_from_transient():
    """A pid that vanishes mid-retry is death, not a transient glitch:
    its per-pid records go and no failure is counted against the
    retry machinery."""
    agent = make_agent(budget=3)
    agent._last_read[100] = 777
    agent._stopped_pids.add(100)
    kapi = RetryKapi([TransientReadError(100), NoSuchProcessError(100)])
    assert agent._retry_read(kapi, 100) is None
    assert agent.read_failures == 0
    assert 100 not in agent._last_read
    assert 100 not in agent._stopped_pids
