"""Resource principals."""

from repro.alps.subjects import ProcessSubject, Subject, UserSubject
from repro.kernel.kernel import Kernel
from repro.kernel.signals import SIGKILL
from repro.sim.engine import Engine
from repro.units import ms
from repro.workloads.spinner import spinner_behavior


def make_env():
    eng = Engine(seed=0)
    k = Kernel(eng)
    return eng, k, k.kapi


def test_process_subject_tracks_single_pid():
    eng, k, kapi = make_env()
    p = k.spawn("a", spinner_behavior())
    subj = ProcessSubject(sid=0, share=3, pid=p.pid)
    assert isinstance(subj, Subject)
    assert subj.pids(kapi) == [p.pid]
    assert subj.refresh(kapi) is False  # unchanged


def test_process_subject_detects_death():
    eng, k, kapi = make_env()
    p = k.spawn("a", spinner_behavior())
    subj = ProcessSubject(sid=0, share=1, pid=p.pid)
    eng.run_until(ms(5))
    k.kill(p.pid, SIGKILL)
    assert subj.refresh(kapi) is True
    assert subj.pids(kapi) == []


def test_user_subject_enumerates_uid():
    eng, k, kapi = make_env()
    a = k.spawn("a", spinner_behavior(), uid=5)
    b = k.spawn("b", spinner_behavior(), uid=5)
    k.spawn("c", spinner_behavior(), uid=6)
    subj = UserSubject(sid=0, share=2, uid=5)
    assert subj.pids(kapi) == []  # before first refresh
    assert subj.refresh(kapi) is True
    assert sorted(subj.pids(kapi)) == sorted([a.pid, b.pid])


def test_user_subject_refresh_tracks_membership_changes():
    eng, k, kapi = make_env()
    a = k.spawn("a", spinner_behavior(), uid=5)
    subj = UserSubject(sid=0, share=1, uid=5)
    subj.refresh(kapi)
    assert subj.refresh(kapi) is False  # no change
    b = k.spawn("b", spinner_behavior(), uid=5)
    assert subj.refresh(kapi) is True
    assert sorted(subj.pids(kapi)) == sorted([a.pid, b.pid])
    eng.run_until(ms(5))
    k.kill(a.pid, SIGKILL)
    assert subj.refresh(kapi) is True
    assert subj.pids(kapi) == [b.pid]
