"""Cycle log structure and helpers."""

import numpy as np

from repro.alps.instrumentation import CycleLog, CycleRecord


def make_record(index, consumed, shares=None, end=0):
    shares = shares if shares is not None else {k: 1 for k in consumed}
    return CycleRecord(
        index=index,
        end_time=end,
        consumed=consumed,
        blocked_quanta={k: 0 for k in consumed},
        shares=shares,
        quantum_us=10_000,
    )


def test_append_len_iter_index():
    log = CycleLog()
    log.append(make_record(0, {1: 100}))
    log.append(make_record(1, {1: 200}))
    assert len(log) == 2
    assert [r.index for r in log] == [0, 1]
    assert log[1].consumed[1] == 200


def test_total_consumed():
    rec = make_record(0, {1: 100, 2: 300})
    assert rec.total_consumed == 400


def test_consumption_matrix_orders_columns():
    log = CycleLog()
    log.append(make_record(0, {1: 10, 2: 20}))
    log.append(make_record(1, {1: 30, 2: 40}))
    m = log.consumption_matrix([2, 1])
    assert m.shape == (2, 2)
    assert (m == np.array([[20, 10], [40, 30]])).all()


def test_matrix_missing_subject_zero():
    log = CycleLog()
    log.append(make_record(0, {1: 10}))
    m = log.consumption_matrix([1, 99])
    assert m[0, 1] == 0


def test_skip_and_tail():
    log = CycleLog()
    for i in range(10):
        log.append(make_record(i, {1: i}))
    assert [r.index for r in log.skip(7)] == [7, 8, 9]
    assert [r.index for r in log.tail(2)] == [8, 9]
