"""The ALPS algorithm (Figure 3): unit semantics.

These tests drive :class:`AlpsCore` directly with synthetic
measurements — no kernel, no agent — checking each clause of the
pseudo-code: allowance bookkeeping, cycle completion, the eligibility
partition, the measurement-postponement optimization, error carryover,
and the blocked-process heuristic.
"""

import math

import pytest

from repro.alps.algorithm import AlpsCore, Measurement
from repro.alps.state import Eligibility
from repro.errors import SchedulerConfigError

Q = 10_000  # 10 ms quantum in µs


def make_core(shares, **kw):
    return AlpsCore(shares, Q, **kw)


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------
def test_initial_state_per_paper():
    core = make_core({1: 1, 2: 2, 3: 3})
    assert core.total_shares == 6
    assert core.cycle_length_us == 6 * Q
    assert core.tc == 6 * Q
    for sid, share in [(1, 1), (2, 2), (3, 3)]:
        st = core.subjects[sid]
        assert st.allowance == share
        assert st.state is Eligibility.INELIGIBLE  # until first quantum


def test_rejects_bad_config():
    with pytest.raises(SchedulerConfigError):
        AlpsCore({}, Q)
    with pytest.raises(SchedulerConfigError):
        AlpsCore({1: 0}, Q)
    with pytest.raises(SchedulerConfigError):
        AlpsCore({1: -2}, Q)
    with pytest.raises(SchedulerConfigError):
        AlpsCore({1: 1}, 0)


# ---------------------------------------------------------------------------
# First invocation
# ---------------------------------------------------------------------------
def test_first_quantum_makes_everyone_eligible():
    core = make_core({1: 1, 2: 2})
    due = core.begin_quantum()
    assert due == []  # nobody eligible yet, so nobody measured
    decisions = core.complete_quantum({})
    assert sorted(decisions.to_resume) == [1, 2]
    assert decisions.to_suspend == []
    assert core.subjects[1].state is Eligibility.ELIGIBLE


def test_update_postponement_set_from_allowance():
    core = make_core({1: 3, 2: 1})
    core.begin_quantum()
    core.complete_quantum({})
    # allowance 3 -> next measurement 3 quanta out; allowance 1 -> next.
    assert core.subjects[1].update == core.count + 3
    assert core.subjects[2].update == core.count + 1


# ---------------------------------------------------------------------------
# Measurement accounting
# ---------------------------------------------------------------------------
def test_consumption_reduces_allowance_and_tc():
    core = make_core({1: 2, 2: 2})
    core.begin_quantum()
    core.complete_quantum({})
    tc_before = core.tc
    core.begin_quantum()
    core.complete_quantum({1: Measurement(consumed_us=Q)})
    assert core.subjects[1].allowance == pytest.approx(1.0)
    assert core.tc == tc_before - Q


def test_exhausted_subject_suspended():
    core = make_core({1: 1, 2: 5})
    core.begin_quantum()
    core.complete_quantum({})
    core.begin_quantum()
    decisions = core.complete_quantum({1: Measurement(consumed_us=Q)})
    assert 1 in decisions.to_suspend
    assert core.subjects[1].state is Eligibility.INELIGIBLE


def test_fractional_consumption_rounds_up_wait():
    core = make_core({1: 5, 2: 5})
    core.begin_quantum()
    core.complete_quantum({})
    count0 = core.count
    core.begin_quantum()
    core.complete_quantum({1: Measurement(consumed_us=7_000)})  # 0.7 Q
    # allowance 4.3 -> paper: cannot finish before ceil(4.3)=5 quanta.
    assert core.subjects[1].allowance == pytest.approx(4.3)
    assert core.subjects[1].update == core.count + 5


def test_only_due_subjects_are_measured():
    core = make_core({1: 4, 2: 1})
    core.begin_quantum()
    core.complete_quantum({})
    due = core.begin_quantum()
    assert due == [2]  # subject 1 postponed for 4 quanta
    core.complete_quantum({2: Measurement(consumed_us=Q)})
    # 3 quanta later subject 1 becomes due.
    for _ in range(2):
        assert 1 not in core.begin_quantum()
        core.complete_quantum({})
    assert 1 in core.begin_quantum()


def test_unoptimized_measures_every_eligible_subject():
    core = make_core({1: 4, 2: 4}, optimized=False)
    core.begin_quantum()
    core.complete_quantum({})
    for _ in range(3):
        due = core.begin_quantum()
        assert sorted(due) == [1, 2]
        core.complete_quantum({sid: Measurement(consumed_us=0) for sid in due})


# ---------------------------------------------------------------------------
# Cycle completion
# ---------------------------------------------------------------------------
def test_cycle_completes_when_tc_exhausted():
    core = make_core({1: 1, 2: 1})
    core.begin_quantum()
    core.complete_quantum({})
    core.begin_quantum()
    decisions = core.complete_quantum(
        {1: Measurement(consumed_us=Q), 2: Measurement(consumed_us=Q)}
    )
    assert decisions.cycle_completed
    assert core.cycles_completed == 1
    assert core.tc == 2 * Q  # replenished by S·Q
    # Allowances re-credited with shares.
    assert core.subjects[1].allowance == pytest.approx(1.0)


def test_cycle_record_contents():
    core = make_core({1: 1, 2: 3})
    core.begin_quantum()
    core.complete_quantum({})
    core.begin_quantum()
    decisions = core.complete_quantum(
        {1: Measurement(consumed_us=Q), 2: Measurement(consumed_us=3 * Q)}
    )
    rec = decisions.cycle_record
    assert rec is not None
    assert rec.consumed == {1: Q, 2: 3 * Q}
    assert rec.shares == {1: 1, 2: 3}
    assert rec.total_consumed == 4 * Q
    assert len(core.cycle_log) == 1


def test_overconsumption_carries_to_next_cycle():
    """Paper §2.2: a process that consumed twice its share skips the
    next cycle, so over two cycles the distribution is met."""
    core = make_core({1: 1, 2: 1})
    core.begin_quantum()
    core.complete_quantum({})
    core.begin_quantum()
    decisions = core.complete_quantum(
        {1: Measurement(consumed_us=2 * Q), 2: Measurement(consumed_us=0)}
    )
    assert decisions.cycle_completed
    # allowance was 1 - 2 = -1, +1 share = 0 -> still ineligible.
    assert core.subjects[1].allowance == pytest.approx(0.0)
    assert core.subjects[1].state is Eligibility.INELIGIBLE
    assert 1 in decisions.to_suspend


def test_consumption_spans_cycles_correctly():
    core = make_core({1: 2, 2: 2})
    core.begin_quantum()
    core.complete_quantum({})
    # Consume the whole cycle's CPU in one lump measurement.
    core.begin_quantum()
    decisions = core.complete_quantum(
        {1: Measurement(consumed_us=2 * Q), 2: Measurement(consumed_us=2 * Q)}
    )
    assert decisions.cycle_completed
    assert core.tc == 4 * Q


# ---------------------------------------------------------------------------
# Blocked-process heuristic (Section 2.4)
# ---------------------------------------------------------------------------
def test_blocked_charges_one_quantum():
    core = make_core({1: 3, 2: 3})
    core.begin_quantum()
    core.complete_quantum({})
    tc_before = core.tc
    core.begin_quantum()
    core.complete_quantum({1: Measurement(consumed_us=0, blocked=True)})
    assert core.subjects[1].allowance == pytest.approx(2.0)
    assert core.tc == tc_before - Q
    assert core.subjects[1].blocked_quanta_this_cycle == 1


def test_fully_blocked_process_ends_cycle_early():
    """If a process blocks through all its quanta, the cycle shortens as
    if its shares never contributed (Section 2.4)."""
    core = make_core({1: 2, 2: 2})
    core.begin_quantum()
    core.complete_quantum({})
    # Subject 1 blocked for 2 quanta, subject 2 consumes its 2 quanta.
    core.begin_quantum()
    core.complete_quantum(
        {
            1: Measurement(consumed_us=0, blocked=True),
            2: Measurement(consumed_us=Q),
        }
    )
    core.begin_quantum()
    decisions = core.complete_quantum(
        {
            1: Measurement(consumed_us=0, blocked=True),
            2: Measurement(consumed_us=Q),
        }
    )
    assert decisions.cycle_completed  # only 2Q of real consumption needed


# ---------------------------------------------------------------------------
# Dynamic membership
# ---------------------------------------------------------------------------
def test_add_subject_extends_cycle():
    core = make_core({1: 1})
    tc_before = core.tc
    core.add_subject(2, 3)
    assert core.total_shares == 4
    assert core.tc == tc_before + 3 * Q
    assert core.subjects[2].allowance == 3.0


def test_add_duplicate_subject_rejected():
    core = make_core({1: 1})
    with pytest.raises(SchedulerConfigError):
        core.add_subject(1, 2)


def test_remove_subject_shrinks_cycle():
    core = make_core({1: 1, 2: 3})
    st = core.remove_subject(2)
    assert st.share == 3
    assert core.total_shares == 1
    assert core.tc == 4 * Q - 3 * Q
    assert 2 not in core.subjects


def test_remove_unknown_subject_rejected():
    core = make_core({1: 1})
    with pytest.raises(SchedulerConfigError):
        core.remove_subject(9)


def test_measurement_for_removed_subject_ignored():
    core = make_core({1: 1, 2: 1})
    core.begin_quantum()
    core.complete_quantum({})
    core.begin_quantum()
    core.remove_subject(2)
    decisions = core.complete_quantum({2: Measurement(consumed_us=Q)})
    assert 2 not in core.subjects
    assert decisions is not None
