"""Edge cases of the core algorithm."""

import pytest

from repro.alps.algorithm import AlpsCore, Measurement
from repro.alps.state import Eligibility
from repro.errors import SchedulerConfigError

Q = 10_000


def test_single_subject_always_eligible_after_first_quantum():
    core = AlpsCore({1: 1}, Q)
    core.begin_quantum()
    core.complete_quantum({})
    for _ in range(20):
        due = core.begin_quantum()
        decisions = core.complete_quantum(
            {sid: Measurement(consumed_us=Q) for sid in due}
        )
        # With only itself in the cycle, every consumed quantum
        # completes a cycle and re-credits it immediately.
        assert core.subjects[1].state is Eligibility.ELIGIBLE


def test_huge_shares_do_not_overflow():
    core = AlpsCore({1: 10**9, 2: 10**9}, Q)
    assert core.cycle_length_us == 2 * 10**9 * Q
    core.begin_quantum()
    core.complete_quantum({})
    assert core.subjects[1].allowance == pytest.approx(1e9)


def test_zero_consumption_measurement_keeps_everything_stable():
    core = AlpsCore({1: 2, 2: 3}, Q)
    core.begin_quantum()
    core.complete_quantum({})
    tc = core.tc
    for _ in range(5):
        due = core.begin_quantum()
        core.complete_quantum({sid: Measurement(consumed_us=0) for sid in due})
    assert core.tc == tc
    assert core.subjects[1].allowance == pytest.approx(2.0)


def test_blocked_only_cycle_terminates():
    """All subjects blocked through their entitlement: the cycle still
    completes (via the tc -= Q charges), so nobody deadlocks."""
    core = AlpsCore({1: 1, 2: 1}, Q)
    core.begin_quantum()
    core.complete_quantum({})
    completed = False
    for _ in range(10):
        due = core.begin_quantum()
        decisions = core.complete_quantum(
            {sid: Measurement(consumed_us=0, blocked=True) for sid in due}
        )
        completed = completed or decisions.cycle_completed
    assert completed
    assert core.cycles_completed >= 1


def test_removing_last_subject_forbidden_by_construction():
    core = AlpsCore({1: 1}, Q)
    st = core.remove_subject(1)
    assert st.share == 1
    # Core now has no subjects: begin_quantum yields nothing and
    # complete_quantum still functions (degenerate but defined).
    assert core.begin_quantum() == []
    core.complete_quantum({})


def test_share_must_be_integer_positive_on_add():
    core = AlpsCore({1: 1}, Q)
    with pytest.raises(SchedulerConfigError):
        core.add_subject(2, 0)


def test_fractional_measurements_accumulate_exactly():
    core = AlpsCore({1: 3, 2: 3}, Q, optimized=False)
    core.begin_quantum()
    core.complete_quantum({})
    for _ in range(6):
        due = core.begin_quantum()
        core.complete_quantum(
            {sid: Measurement(consumed_us=Q // 2) for sid in due}
        )
    # 6 half-quantum measurements each = 3 quanta each = one cycle.
    assert core.cycles_completed == 1
    for sid in (1, 2):
        assert core.subjects[sid].allowance == pytest.approx(3.0)
