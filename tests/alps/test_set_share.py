"""Dynamic reweighting (set_share extension)."""

import pytest

from repro.alps.algorithm import AlpsCore
from repro.alps.config import AlpsConfig
from repro.errors import SchedulerConfigError
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload

Q = 10_000


def test_set_share_adjusts_totals_and_allowance():
    core = AlpsCore({1: 2, 2: 2}, Q)
    core.set_share(1, 5)
    assert core.total_shares == 7
    assert core.subjects[1].share == 5
    assert core.subjects[1].allowance == pytest.approx(5.0)
    assert core.tc == 7 * Q


def test_set_share_decrease():
    core = AlpsCore({1: 5, 2: 2}, Q)
    core.set_share(1, 1)
    assert core.total_shares == 3
    assert core.subjects[1].allowance == pytest.approx(1.0)


def test_set_share_same_value_is_noop():
    core = AlpsCore({1: 2}, Q)
    tc = core.tc
    core.set_share(1, 2)
    assert core.tc == tc


def test_set_share_validation():
    core = AlpsCore({1: 2}, Q)
    with pytest.raises(SchedulerConfigError):
        core.set_share(9, 2)
    with pytest.raises(SchedulerConfigError):
        core.set_share(1, 0)


def test_end_to_end_reweighting_shifts_allocation():
    cw = build_controlled_workload([1, 1], AlpsConfig(quantum_us=ms(10)), seed=0)
    cw.engine.run_until(sec(10))
    before = [cw.kernel.getrusage(w.pid) for w in cw.workers]
    # Make worker 1 worth 4x worker 0 from now on.
    cw.agent.set_share(1, 4)
    cw.engine.run_until(sec(30))
    after = [cw.kernel.getrusage(w.pid) for w in cw.workers]
    window = [a - b for a, b in zip(after, before)]
    frac1 = window[1] / sum(window)
    assert frac1 == pytest.approx(0.8, abs=0.04)
    # First phase was an even split.
    assert before[0] == pytest.approx(before[1], rel=0.1)
