"""Differential test: AlpsCore vs a naive oracle of Figure 3.

The oracle is a line-by-line transliteration of the paper's pseudo
code with none of the production implementation's structure (no
dataclasses, no decisions object, no logs).  Both are driven with the
same random measurement streams and must agree exactly on count,
tc, allowances, and eligibility at every step.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.alps.algorithm import AlpsCore, Measurement


class OracleAlps:
    """Naive reference implementation of Figure 3."""

    def __init__(self, shares: dict[int, int], quantum: int, optimized: bool):
        self.Q = quantum
        self.S = sum(shares.values())
        self.share = dict(shares)
        self.allowance = {i: float(s) for i, s in shares.items()}
        self.state = {i: "ineligible" for i in shares}
        self.update = {i: 0 for i in shares}
        self.count = 0
        self.tc = self.S * self.Q
        self.optimized = optimized

    def due(self) -> list[int]:
        self.count += 1
        out = []
        for i in self.share:
            if self.state[i] != "eligible":
                continue
            if self.optimized and self.update[i] > self.count:
                continue
            out.append(i)
        return out

    def step(self, readings: dict[int, tuple[int, bool]]) -> None:
        for i, (consumed, blocked) in readings.items():
            self.allowance[i] -= consumed / self.Q
            self.tc -= consumed
            if blocked:
                self.allowance[i] -= 1
                self.tc -= self.Q
        cycles = 0
        if self.tc <= 0:
            cycles = 1
            self.tc += self.S * self.Q
        for i in self.share:
            self.allowance[i] += self.share[i] * cycles
            self.state[i] = "eligible" if self.allowance[i] > 0 else "ineligible"
            if self.update[i] <= self.count or i in readings:
                self.update[i] = self.count + max(1, math.ceil(self.allowance[i]))


shares_strategy = st.dictionaries(
    keys=st.integers(min_value=1, max_value=6),
    values=st.integers(min_value=1, max_value=12),
    min_size=1,
    max_size=5,
)


@given(
    shares=shares_strategy,
    optimized=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=60, deadline=None)
def test_core_matches_oracle(shares, optimized, seed):
    import numpy as np

    Q = 10_000
    rng = np.random.default_rng(seed)
    core = AlpsCore(shares, Q, optimized=optimized)
    oracle = OracleAlps(shares, Q, optimized)

    for _ in range(50):
        due_core = core.begin_quantum()
        due_oracle = oracle.due()
        assert sorted(due_core) == sorted(due_oracle)
        readings = {
            sid: (int(rng.integers(0, 2 * Q)), bool(rng.integers(0, 2)))
            for sid in due_core
        }
        core.complete_quantum(
            {
                sid: Measurement(consumed_us=c, blocked=b)
                for sid, (c, b) in readings.items()
            }
        )
        oracle.step(readings)
        assert core.count == oracle.count
        assert core.tc == oracle.tc
        for sid in shares:
            assert math.isclose(
                core.subjects[sid].allowance, oracle.allowance[sid],
                rel_tol=1e-12, abs_tol=1e-9,
            )
            assert (
                core.subjects[sid].state.value == oracle.state[sid]
            ), (sid, core.count)
