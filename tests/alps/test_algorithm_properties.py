"""Property-based tests of the ALPS algorithm (hypothesis).

Two classes of invariant:

1. Structural: eligibility always matches the allowance sign; tc stays
   within one cycle length of its bounds; allowance totals are
   conserved across arbitrary measurement sequences.
2. Behavioural: on a *fully-observable* consumption trace (every
   eligible subject measured every quantum), the optimized and
   unoptimized cores make identical eligibility decisions — i.e. the
   postponement optimization never changes scheduling outcomes, only
   how often progress is read (the paper's central efficiency claim).
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.alps.algorithm import AlpsCore, Measurement
from repro.alps.state import Eligibility

Q = 10_000

shares_strategy = st.dictionaries(
    keys=st.integers(min_value=1, max_value=8),
    values=st.integers(min_value=1, max_value=20),
    min_size=1,
    max_size=6,
)


def _drive(core: AlpsCore, rng_draws, quanta: int) -> list[dict]:
    """Drive the core with synthetic consumption; returns eligibility
    snapshots after every quantum."""
    snapshots = []
    draw_i = 0
    for _ in range(quanta):
        due = core.begin_quantum()
        measurements = {}
        for sid in due:
            consumed = rng_draws[draw_i % len(rng_draws)]
            draw_i += 1
            measurements[sid] = Measurement(consumed_us=consumed)
        core.complete_quantum(measurements)
        core.invariant_check()
        snapshots.append(
            {sid: s.state for sid, s in core.subjects.items()}
        )
    return snapshots


@given(
    shares=shares_strategy,
    draws=st.lists(
        st.integers(min_value=0, max_value=3 * Q), min_size=1, max_size=50
    ),
)
@settings(max_examples=60, deadline=None)
def test_eligibility_matches_allowance_sign(shares, draws):
    core = AlpsCore(shares, Q)
    _drive(core, draws, quanta=40)


@given(
    shares=shares_strategy,
    draws=st.lists(
        st.integers(min_value=0, max_value=2 * Q), min_size=1, max_size=50
    ),
)
@settings(max_examples=60, deadline=None)
def test_tc_bounded(shares, draws):
    """tc never exceeds the cycle length and is replenished on underrun."""
    core = AlpsCore(shares, Q)
    cycle = core.cycle_length_us
    draw_i = 0
    for _ in range(40):
        due = core.begin_quantum()
        measurements = {}
        for sid in due:
            measurements[sid] = Measurement(consumed_us=draws[draw_i % len(draws)])
            draw_i += 1
        core.complete_quantum(measurements)
        assert core.tc <= cycle
        assert core.tc > -cycle  # replenished within the same invocation


@given(
    shares=shares_strategy,
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_allowance_conservation(shares, seed):
    """Sum of allowances = sum of credits − consumption − blocked charges.

    Credits are shares × (1 + cycles completed); consumption and blocked
    charges are what measurements reported.  This is exact arithmetic in
    the algorithm, independent of scheduling."""
    import numpy as np

    rng = np.random.default_rng(seed)
    core = AlpsCore(shares, Q)
    total_consumed = 0
    total_blocked = 0
    for _ in range(30):
        due = core.begin_quantum()
        measurements = {}
        for sid in due:
            consumed = int(rng.integers(0, 2 * Q))
            blocked = bool(rng.integers(0, 2))
            measurements[sid] = Measurement(consumed_us=consumed, blocked=blocked)
            total_consumed += consumed
            total_blocked += int(blocked)
        core.complete_quantum(measurements)
    expected = (
        sum(shares.values()) * (1 + core.cycles_completed)
        - total_consumed / Q
        - total_blocked
    )
    actual = sum(s.allowance for s in core.subjects.values())
    assert math.isclose(actual, expected, rel_tol=1e-9, abs_tol=1e-6)


def _run_trace(shares, trace, *, optimized: bool):
    """Drive a core against a fixed per-(subject, quantum) consumption
    trace; subjects consume only while eligible, and a postponed read
    returns the sum over the postponed quanta — exactly what a delayed
    progress read of a CPU-bound process returns."""
    sids = sorted(shares)
    quanta = len(next(iter(trace.values())))
    core = AlpsCore(shares, Q, optimized=optimized)
    unread: dict[int, int] = {sid: 0 for sid in sids}
    reads = 0
    min_allowance = 0.0
    for q in range(quanta):
        for sid in sids:
            if core.subjects[sid].state is Eligibility.ELIGIBLE:
                unread[sid] += trace[sid][q]
        due = core.begin_quantum()
        measurements = {}
        for sid in due:
            measurements[sid] = Measurement(consumed_us=unread[sid])
            unread[sid] = 0
            reads += 1
        core.complete_quantum(measurements)
        min_allowance = min(
            min_allowance, min(s.allowance for s in core.subjects.values())
        )
    return core, reads, min_allowance


@given(
    shares=shares_strategy,
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_postponement_never_overshoots_by_more_than_one_quantum(shares, seed):
    """Core safety claim of §2.3: a subject with allowance *a* cannot
    exhaust it in fewer than ⌈a⌉ quanta, so deferring its measurement
    that long bounds any overshoot below one quantum's worth."""
    import numpy as np

    rng = np.random.default_rng(seed)
    sids = sorted(shares)
    trace = {sid: [int(rng.integers(0, Q + 1)) for _ in range(60)] for sid in sids}
    _core, _reads, min_allowance = _run_trace(shares, trace, optimized=True)
    # Per-quantum consumption <= Q (single CPU), so allowance >= -1.
    assert min_allowance >= -1.0 - 1e-9


@given(
    shares=shares_strategy,
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_optimization_reduces_reads_and_preserves_throughput(shares, seed):
    """The optimization may only *reduce* progress reads, and shifts
    cycle boundaries by at most the consumption hidden in pending
    reads (bounded by one cycle)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    sids = sorted(shares)
    trace = {sid: [int(rng.integers(0, Q + 1)) for _ in range(60)] for sid in sids}
    core_opt, reads_opt, _ = _run_trace(shares, trace, optimized=True)
    core_unopt, reads_unopt, _ = _run_trace(shares, trace, optimized=False)
    assert reads_opt <= reads_unopt
    assert abs(core_opt.cycles_completed - core_unopt.cycles_completed) <= 2
