"""Table 1 cost model and the fractional-cost accumulator."""

import pytest
from hypothesis import given, strategies as st

from repro.alps.costs import CostAccumulator, CostModel


def test_paper_constants_are_default():
    m = CostModel()
    assert m.timer_event_us == pytest.approx(9.02)
    assert m.measure_fixed_us == pytest.approx(1.1)
    assert m.measure_per_proc_us == pytest.approx(17.4)
    assert m.signal_us == pytest.approx(0.97)


def test_measure_cost_linear_in_n():
    m = CostModel()
    assert m.measure_cost(0) == 0.0
    assert m.measure_cost(1) == pytest.approx(1.1 + 17.4)
    assert m.measure_cost(10) == pytest.approx(1.1 + 174.0)


def test_quantum_cost_includes_timer():
    m = CostModel()
    assert m.quantum_cost(0) == pytest.approx(9.02)
    assert m.quantum_cost(3) == pytest.approx(9.02 + 1.1 + 3 * 17.4)


def test_accumulator_rejects_negative():
    with pytest.raises(ValueError):
        CostAccumulator().charge(-0.1)


def test_accumulator_carries_fractions():
    acc = CostAccumulator()
    charges = [acc.charge(0.4) for _ in range(10)]
    assert sum(charges) == 4  # 10 × 0.4 = 4 exactly over time


@given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=500))
def test_accumulator_total_is_exact_to_one_unit(costs):
    acc = CostAccumulator()
    total = sum(acc.charge(c) for c in costs)
    assert abs(total - sum(costs)) < 1.0


@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=200))
def test_accumulator_never_negative_charge(costs):
    acc = CostAccumulator()
    assert all(acc.charge(c) >= 0 for c in costs)
