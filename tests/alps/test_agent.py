"""ALPS agent integration with the simulated kernel."""

import pytest

from repro.alps.agent import AlpsAgent, spawn_alps
from repro.alps.config import AlpsConfig
from repro.alps.subjects import ProcessSubject, UserSubject
from repro.kernel.kernel import Kernel
from repro.kernel.signals import SIGKILL
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.spinner import spinner_behavior


def test_agent_requires_subjects():
    with pytest.raises(ValueError):
        AlpsAgent([], AlpsConfig())


def test_agent_rejects_duplicate_sids():
    subjects = [
        ProcessSubject(sid=0, share=1, pid=1),
        ProcessSubject(sid=0, share=2, pid=2),
    ]
    with pytest.raises(ValueError):
        AlpsAgent(subjects, AlpsConfig())


def test_agent_enforces_proportions():
    cw = build_controlled_workload([1, 4], AlpsConfig(quantum_us=ms(10)), seed=3)
    cw.engine.run_until(sec(20))
    a = cw.kernel.getrusage(cw.workers[0].pid)
    b = cw.kernel.getrusage(cw.workers[1].pid)
    assert b / (a + b) == pytest.approx(0.8, abs=0.03)


def test_agent_invocations_track_quanta():
    cw = build_controlled_workload([1, 1], AlpsConfig(quantum_us=ms(20)), seed=0)
    cw.engine.run_until(sec(4))
    expected = sec(4) // ms(20)
    assert cw.agent.invocations == pytest.approx(expected, rel=0.05)


def test_agent_sends_signals_and_tracks_stops():
    cw = build_controlled_workload([1, 9], AlpsConfig(quantum_us=ms(10)), seed=0)
    cw.engine.run_until(sec(5))
    assert cw.agent.signals_sent > 0
    # The 1-share worker must be stopped most of the time.
    assert cw.workers[0].stopped or not cw.workers[0].stopped  # state flips
    log = cw.agent.cycle_log
    assert len(log) > 10


def test_optimized_agent_reads_less():
    kwargs = dict(seed=0)
    opt = build_controlled_workload(
        [5] * 6, AlpsConfig(quantum_us=ms(10), optimized=True), **kwargs
    )
    opt.engine.run_until(sec(10))
    unopt = build_controlled_workload(
        [5] * 6, AlpsConfig(quantum_us=ms(10), optimized=False), **kwargs
    )
    unopt.engine.run_until(sec(10))
    assert opt.agent.reads < unopt.agent.reads
    assert opt.kernel.getrusage(opt.alps_proc.pid) < unopt.kernel.getrusage(
        unopt.alps_proc.pid
    )


def test_dead_worker_is_reaped_and_shares_rebalance():
    cw = build_controlled_workload([1, 1, 2], AlpsConfig(quantum_us=ms(10)), seed=0)
    cw.engine.run_until(sec(2))
    cw.kernel.kill(cw.workers[2].pid, SIGKILL)
    cw.engine.run_until(sec(4))
    # Subject 2 removed from the core.
    assert 2 not in cw.agent.core.subjects
    assert cw.agent.core.total_shares == 2


def test_user_subject_agent_controls_group():
    eng = Engine(seed=0)
    k = Kernel(eng)
    for i in range(2):
        k.spawn(f"u1-{i}", spinner_behavior(), uid=100)
    for i in range(2):
        k.spawn(f"u2-{i}", spinner_behavior(), uid=200)
    subjects = [
        UserSubject(sid=0, share=1, uid=100),
        UserSubject(sid=1, share=3, uid=200),
    ]
    proc, agent = spawn_alps(k, subjects, AlpsConfig(quantum_us=ms(20)))
    eng.run_until(sec(20))
    u1 = sum(k.getrusage(p) for p in k.pids_of_uid(100))
    u2 = sum(k.getrusage(p) for p in k.pids_of_uid(200))
    assert u2 / (u1 + u2) == pytest.approx(0.75, abs=0.05)


def test_new_process_of_suspended_user_is_stopped_at_discovery():
    eng = Engine(seed=0)
    k = Kernel(eng)
    k.spawn("u1", spinner_behavior(), uid=100)
    k.spawn("u2", spinner_behavior(), uid=200)
    subjects = [
        UserSubject(sid=0, share=1, uid=100),
        UserSubject(sid=1, share=50, uid=200),
    ]
    proc, agent = spawn_alps(k, subjects, AlpsConfig(quantum_us=ms(10)))
    eng.run_until(sec(3))
    # uid 100 is now typically suspended (1/51 share); spawn a new proc
    # for it and verify the next refresh stops the newcomer too.
    late = k.spawn("u1-late", spinner_behavior(), uid=100)
    eng.run_until(sec(6))
    usage = k.getrusage(late.pid)
    # It must not have free-ridden: over 3 s it may use at most a
    # generous multiple of the group entitlement (1/51 ≈ 59 ms/3 s).
    assert usage < ms(600)


def test_agent_overhead_accounted_to_its_process():
    cw = build_controlled_workload([2, 2], AlpsConfig(quantum_us=ms(10)), seed=0)
    cw.engine.run_until(sec(5))
    alps_cpu = cw.kernel.getrusage(cw.alps_proc.pid)
    assert alps_cpu > 0
    assert alps_cpu < sec(5) * 0.02  # well under 2 %
