"""ALPS configuration validation."""

import pytest

from repro.alps.config import AlpsConfig
from repro.errors import SchedulerConfigError
from repro.units import ms


def test_defaults():
    cfg = AlpsConfig()
    assert cfg.quantum_us == ms(10)
    assert cfg.optimized
    assert cfg.track_io
    assert cfg.principal_refresh_us == 1_000_000


def test_rejects_nonpositive_quantum():
    with pytest.raises(SchedulerConfigError):
        AlpsConfig(quantum_us=0)
    with pytest.raises(SchedulerConfigError):
        AlpsConfig(quantum_us=-5)


def test_rejects_nonpositive_refresh():
    with pytest.raises(SchedulerConfigError):
        AlpsConfig(principal_refresh_us=0)


def test_frozen():
    cfg = AlpsConfig()
    with pytest.raises(Exception):
        cfg.quantum_us = 5  # type: ignore[misc]
