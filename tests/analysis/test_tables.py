"""ASCII table formatting."""

from repro.analysis.tables import format_table


def test_basic_table():
    out = format_table(["a", "bb"], [[1, 2.5], [30, None]])
    lines = out.splitlines()
    assert lines[0].split() == ["a", "bb"]
    assert "2.50" in out
    assert "-" in lines[-1]  # None rendered as dash


def test_title():
    out = format_table(["x"], [[1]], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_alignment_widths():
    out = format_table(["col"], [["longvalue"]])
    header, sep, row = out.splitlines()
    assert len(header) == len(row)
