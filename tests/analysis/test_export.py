"""CSV export."""

import csv

from repro.analysis.export import write_csv


def test_writes_rows(tmp_path):
    path = write_csv(
        tmp_path / "out.csv",
        [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}],
    )
    with path.open() as f:
        rows = list(csv.DictReader(f))
    assert rows == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]


def test_empty_rows_creates_empty_file(tmp_path):
    path = write_csv(tmp_path / "empty.csv", [])
    assert path.read_text() == ""


def test_explicit_fieldnames_subset(tmp_path):
    path = write_csv(
        tmp_path / "sub.csv", [{"a": 1, "b": 2}], fieldnames=["a"]
    )
    assert path.read_text().splitlines()[0] == "a"


def test_creates_parent_dirs(tmp_path):
    path = write_csv(tmp_path / "deep" / "dir" / "f.csv", [{"x": 1}])
    assert path.exists()
