"""Workload summaries."""

import pytest

from repro.alps.config import AlpsConfig
from repro.analysis.summary import summarize_workload
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload


@pytest.fixture(scope="module")
def finished_run():
    cw = build_controlled_workload([1, 2], AlpsConfig(quantum_us=ms(10)), seed=0)
    cw.engine.run_until(sec(10))
    return cw


def test_summary_fields(finished_run):
    s = summarize_workload(finished_run)
    assert s.wall_us == sec(10)
    assert s.cycles > 50
    assert 0 < s.error_pct < 20
    assert 0 < s.overhead_pct < 1
    assert s.alps_invocations > 500
    assert len(s.rows) == 2


def test_summary_rows_reflect_shares(finished_run):
    s = summarize_workload(finished_run)
    (name0, share0, t0, a0, cpu0, _), (name1, share1, t1, a1, cpu1, _) = s.rows
    assert share0 == 1 and share1 == 2
    assert cpu1 > cpu0


def test_format_renders(finished_run):
    s = summarize_workload(finished_run)
    text = s.format()
    assert "workload summary" in text
    assert "invocations" in text
    assert "context switches" in text
