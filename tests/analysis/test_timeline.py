"""Timeline recording and rendering."""

import pytest

from repro.analysis.timeline import RunInterval, Timeline, attach_timeline
from repro.kernel.kconfig import KernelConfig
from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.workloads.spinner import spinner_behavior


def test_add_merges_contiguous_same_pid():
    t = Timeline()
    t.add(1, 0, 10)
    t.add(1, 10, 20)
    t.add(2, 20, 30)
    assert t.intervals == [RunInterval(1, 0, 20), RunInterval(2, 20, 30)]


def test_add_ignores_empty():
    t = Timeline()
    t.add(1, 5, 5)
    assert t.intervals == []


def test_busy_of_windows():
    t = Timeline()
    t.add(1, 0, 100)
    t.add(2, 100, 200)
    t.add(1, 200, 300)
    assert t.busy_of(1) == 200
    assert t.busy_of(1, 50, 250) == 100
    assert t.busy_of(2, 0, 150) == 50


def test_render_shape():
    t = Timeline()
    t.add(1, 0, 500)
    t.add(2, 500, 1000)
    out = t.render(0, 1000, width=20, labels={1: "alps"})
    lines = out.splitlines()
    assert len(lines) == 3  # header + 2 pids
    assert "alps" in lines[1]
    assert "#" in lines[1] and "#" in lines[2]


def test_render_requires_window():
    with pytest.raises(ValueError):
        Timeline().render(10, 10)


def test_attached_timeline_accounts_all_cpu():
    eng = Engine(seed=0)
    k = Kernel(eng, KernelConfig(ctx_switch_us=0))
    a = k.spawn("a", spinner_behavior())
    b = k.spawn("b", spinner_behavior())
    tl = attach_timeline(k)
    eng.run_until(sec(3))
    k._charge_current()  # flush the in-flight interval
    busy = tl.busy_of(a.pid) + tl.busy_of(b.pid)
    assert busy == pytest.approx(sec(3), abs=ms(1))
    # Timeline matches kernel accounting per process.
    assert tl.busy_of(a.pid) == pytest.approx(k.getrusage(a.pid), abs=ms(1))
    assert sorted(tl.pids()) == sorted([a.pid, b.pid])


def test_attached_timeline_shows_rotation():
    eng = Engine(seed=0)
    k = Kernel(eng, KernelConfig(ctx_switch_us=0))
    k.spawn("a", spinner_behavior())
    k.spawn("b", spinner_behavior())
    tl = attach_timeline(k)
    eng.run_until(sec(2))
    # The two spinners alternate: more than one interval each.
    per_pid = {pid: sum(1 for iv in tl.intervals if iv.pid == pid) for pid in tl.pids()}
    assert all(count >= 2 for count in per_pid.values())
