"""ASCII plotting."""

from repro.analysis.ascii_plot import ascii_series_plot


def test_empty_series():
    assert ascii_series_plot({"a": ([], [])}) == "(no data)"


def test_plot_contains_marks_and_legend():
    out = ascii_series_plot(
        {"up": ([0, 1, 2], [0, 1, 2]), "down": ([0, 1, 2], [2, 1, 0])},
        width=20,
        height=8,
        title="T",
    )
    assert out.splitlines()[0] == "T"
    assert "o up" in out
    assert "x down" in out
    assert "o" in out and "x" in out


def test_constant_series_does_not_crash():
    out = ascii_series_plot({"flat": ([0, 1], [5, 5])})
    assert "flat" in out
