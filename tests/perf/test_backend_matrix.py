"""Backend differential-equivalence matrix.

The struct-of-arrays backends (``KernelConfig(backend="batch")`` and
the array-resident ``backend="resident"``) are only allowed to exist
because this battery holds: every backend — strict, optimized, batch,
resident — must produce byte-identical schedules over the full Table 2
workload matrix × seeds 0–4, bare *and* stacked with every
cross-cutting layer (observability, fault injection, journaling +
supervision, overload protection, hierarchical share trees).

Strict is the reference: ``optimized`` and ``batch`` are each compared
against the strict fingerprint of the same cell, so a failure names
the offending backend directly.  Faulted cells are compared across
backends only (a faulted schedule legitimately differs from a clean
one); their fingerprints embed the injector's realized fault trace, so
the comparison also pins that every backend sees the identical fault
sequence.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.faults.plan import FaultPlan, ProcessCrash
from repro.perf.differential import (
    TABLE2_SIZES,
    describe_difference,
    fingerprint_run,
)
from repro.units import sec
from repro.workloads.shares import DISTRIBUTIONS, ShareDistribution, workload_shares

#: Backends checked against the strict reference.
CHALLENGERS = ("optimized", "batch", "resident")

#: Seeds of the acceptance sweep.
SEEDS = (0, 1, 2, 3, 4)

#: Horizon: dozens of ALPS cycles per cell, short enough that the full
#: (3 models × 3 sizes + 4 stacks) × 5 seeds × 3 backends sweep stays
#: in seconds.
HORIZON_US = sec(3)

#: The representative cell for the stacked sweeps (mid-size, uneven
#: shares — exercises suspension, postponement, and wakeup boosts).
STACK_MODEL = ShareDistribution.SKEWED
STACK_N = 10

#: Stacked layers: name -> fingerprint_run keyword arguments.
STACKS: dict[str, dict] = {
    "obs": {"obs": True},
    "journal": {"resilience": True},
    "overload": {"overload": True},
    "sharetree": {"sharetree": True},
}


def _fault_plan() -> FaultPlan:
    """A deterministic plan exercising crash, drop, and read faults."""
    return FaultPlan(
        seed=3,
        crashes=(ProcessCrash(1_500_000, 1),),
        signal_drop_prob=0.05,
        rusage_fail_prob=0.02,
    )


@lru_cache(maxsize=None)
def _fingerprint(model, n, seed, backend, stack):
    kwargs = dict(STACKS.get(stack, {}))
    if stack == "faults":
        kwargs["fault_plan"] = _fault_plan()
    return fingerprint_run(
        workload_shares(model, n),
        seed=seed,
        backend=backend,
        horizon_us=HORIZON_US,
        **kwargs,
    )


def _assert_matches_strict(model, n, seed, backend, stack):
    reference = _fingerprint(model, n, seed, "strict", stack)
    challenger = _fingerprint(model, n, seed, backend, stack)
    assert challenger == reference, (
        f"{backend} diverged from strict on {model.value} n={n} "
        f"seed={seed} stack={stack}: "
        + describe_difference(
            reference, challenger, left="strict", right=backend
        )
    )


@pytest.mark.parametrize("backend", CHALLENGERS)
@pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
@pytest.mark.parametrize("n", TABLE2_SIZES)
@pytest.mark.parametrize("model", DISTRIBUTIONS, ids=lambda m: m.value)
def test_backend_matches_strict_on_table2(model, n, seed, backend):
    """Bare Table 2 matrix × seeds 0–4: every backend, byte-identical."""
    _assert_matches_strict(model, n, seed, backend, "plain")


@pytest.mark.parametrize("backend", CHALLENGERS)
@pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
@pytest.mark.parametrize("stack", sorted(STACKS) + ["faults"])
def test_backend_matches_strict_stacked(stack, seed, backend):
    """Each cross-cutting layer stacked on the backend sweep.

    obs/journal/overload cells must equal the strict cell with the same
    stack; faulted cells must equal the strict *faulted* cell — the
    fault realization (embedded in the fingerprint) included.
    """
    _assert_matches_strict(STACK_MODEL, STACK_N, seed, backend, stack)


@pytest.mark.parametrize("backend", CHALLENGERS)
def test_backend_matches_strict_all_stacks_at_once(backend):
    """The full pile-up: journal + supervision + overload + obs together."""
    shares = workload_shares(STACK_MODEL, STACK_N)
    kwargs = dict(resilience=True, overload=True, obs=True)
    reference = fingerprint_run(
        shares, seed=0, backend="strict", horizon_us=HORIZON_US, **kwargs
    )
    challenger = fingerprint_run(
        shares, seed=0, backend=backend, horizon_us=HORIZON_US, **kwargs
    )
    assert challenger == reference, describe_difference(
        reference, challenger, left="strict", right=backend
    )


@pytest.mark.parametrize("backend", ("batch", "resident"))
def test_stacked_layers_remain_schedule_invisible_on_soa_backends(backend):
    """obs/journal/overload/sharetree must not perturb the SoA backends'
    schedules either (the invisibility contract each layer already
    holds on strict)."""
    bare = _fingerprint(STACK_MODEL, STACK_N, 0, backend, "plain")
    for stack in STACKS:
        stacked = _fingerprint(STACK_MODEL, STACK_N, 0, backend, stack)
        assert stacked == bare, (
            f"stack={stack} perturbed the {backend} schedule: "
            + describe_difference(bare, stacked, left="bare", right=stack)
        )


def test_unknown_backend_is_rejected():
    from repro.kernel.kconfig import KernelConfig

    with pytest.raises(ValueError, match="unknown kernel backend"):
        KernelConfig(backend="vectorized").resolve_backend()


def test_auto_backend_defers_to_strict_flag():
    from repro.kernel.kconfig import KernelConfig

    assert KernelConfig().resolve_backend() == "optimized"
    assert KernelConfig(strict=True).resolve_backend() == "strict"
    assert KernelConfig(backend="batch", strict=True).resolve_backend() == "batch"
