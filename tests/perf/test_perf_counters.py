"""PerfCounters, the engine's per-run accounting, and the report path."""

from __future__ import annotations

from repro.alps.config import AlpsConfig
from repro.perf.counters import PerfCounters
from repro.perf.profiler import WallTimer, profile_call
from repro.perf.report import collect_workload_counters, render_report
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload


def test_incr_and_add_time_accumulate():
    c = PerfCounters()
    c.incr("a")
    c.incr("a", 4)
    c.add_time("t", 0.25)
    c.add_time("t", 0.5)
    assert c.counts["a"] == 5
    assert c.times["t"] == 0.75


def test_counts_and_times_are_separate_namespaces():
    c = PerfCounters()
    c.incr("x", 3)
    c.add_time("x", 1.0)
    assert c.counts["x"] == 3
    assert c.times["x"] == 1.0


def test_time_block_and_merge_and_snapshot():
    a, b = PerfCounters(), PerfCounters()
    with a.time_block("blk"):
        pass
    a.incr("n", 2)
    b.incr("n", 3)
    b.add_time("blk", 1.0)
    a.merge(b)
    snap = a.snapshot()
    assert snap["counts"]["n"] == 5
    assert snap["times"]["blk"] >= 1.0
    a.clear()
    assert a.counts == {} and a.times == {}
    assert snap["counts"]["n"] == 5  # snapshot detached from clear()


def test_rate_handles_missing_and_zero_time():
    c = PerfCounters()
    assert c.rate("e", "t") == 0.0
    c.incr("e", 10)
    c.add_time("t", 2.0)
    assert c.rate("e", "t") == 5.0


def test_engine_accounts_runs_into_attached_counters():
    counters = PerfCounters()
    engine = Engine(seed=0, counters=counters)
    fired = []
    engine.at(10, lambda e: fired.append(e.time))
    engine.run_until(100)
    assert fired == [10]
    assert counters.counts["engine.events"] == 1
    assert counters.times["engine.run_until"] > 0.0


def test_engine_without_counters_keeps_none_attached():
    engine = Engine(seed=0)
    engine.run_until(100)
    assert engine.counters is None


def test_collect_and_render_workload_report():
    counters = PerfCounters()
    cw = build_controlled_workload(
        [1, 2], AlpsConfig(quantum_us=ms(10)), seed=0, counters=counters
    )
    cw.engine.run_until(sec(2))
    collect_workload_counters(cw, into=counters)
    assert counters.counts["agent.invocations"] > 0
    assert counters.counts["kernel.context_switches"] > 0
    assert counters.counts["engine.events_total"] == cw.engine.events_processed
    text = render_report(counters)
    assert "agent.invocations" in text
    assert "engine.run_until" in text
    assert "events/sec" in text


def test_profile_call_returns_result_and_report():
    out = profile_call(sum, [1, 2, 3])
    assert out.result == 6
    assert "function calls" in out.report
    assert out.total_seconds >= 0.0


def test_wall_timer_measures_elapsed():
    with WallTimer() as t:
        sum(range(1000))
    assert t.elapsed > 0.0
