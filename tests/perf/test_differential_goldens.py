"""Golden-trace differential tests: strict vs optimized kernel paths.

Every schedule-invisible fast path in the substrate is only allowed to
exist because these tests hold: for equal seeds, each Table 2 workload
must produce byte-identical cycle logs and event traces whether the
kernel runs its original eager bookkeeping (``strict=True``) or the
optimized lazy path (the default).  The full acceptance sweep is
DISTRIBUTIONS × {5, 10, 20} × seeds {0, 1, 2}.
"""

from __future__ import annotations

import pytest

from repro.perf.differential import (
    TABLE2_SIZES,
    RunFingerprint,
    compare_cell,
    fingerprint_run,
    serialize_cycle_log,
)
from repro.units import ms, sec
from repro.workloads.shares import DISTRIBUTIONS

#: Per-cell horizon: long enough for dozens of cycles on every
#: distribution, short enough to keep the 27-cell sweep in seconds.
HORIZON_US = sec(5)


@pytest.mark.parametrize("model", DISTRIBUTIONS, ids=lambda m: m.value)
@pytest.mark.parametrize("n", TABLE2_SIZES)
@pytest.mark.parametrize("seed", (0, 1, 2))
def test_strict_and_optimized_schedules_are_byte_identical(model, n, seed):
    cell = compare_cell(model, n, seed, horizon_us=HORIZON_US)
    assert cell.matches, (
        f"{model.value} n={n} seed={seed}: strict and optimized paths "
        f"diverged — {cell.detail}"
    )
    # The digests double as goldens within the run: equal fingerprints
    # must render equal digests.
    assert cell.strict_digest == cell.optimized_digest


def test_fingerprint_is_reproducible_for_equal_seeds():
    a = fingerprint_run([1, 2, 3], seed=7, horizon_us=sec(2))
    b = fingerprint_run([1, 2, 3], seed=7, horizon_us=sec(2))
    assert a == b
    assert a.digest() == b.digest()
    assert len(a.trace) > 0 and len(a.cycle_log) > 0


def test_fingerprint_distinguishes_seeds_or_workloads():
    base = fingerprint_run([1, 2, 3], seed=0, horizon_us=sec(2))
    other_shares = fingerprint_run([3, 2, 1], seed=0, horizon_us=sec(2))
    assert base != other_shares


def test_detail_pinpoints_an_injected_difference():
    a = fingerprint_run([1, 1], seed=0, horizon_us=sec(1))
    tampered = RunFingerprint(
        cycle_log=a.cycle_log,
        trace=a.trace + b"\n999 event tampered",
        events=a.events,
        final_now=a.final_now,
    )
    from repro.perf.differential import _first_difference

    assert "trace" in _first_difference(a, tampered)


def test_cycle_log_serialization_is_key_order_independent():
    """Mapping insertion order must not leak into the bytes."""
    from repro.alps.instrumentation import CycleLog, CycleRecord

    fwd = CycleRecord(
        index=0,
        end_time=100,
        consumed={1: 10, 2: 20},
        blocked_quanta={1: 0, 2: 1},
        shares={1: 1, 2: 2},
        quantum_us=ms(10),
    )
    rev = CycleRecord(
        index=0,
        end_time=100,
        consumed={2: 20, 1: 10},
        blocked_quanta={2: 1, 1: 0},
        shares={2: 2, 1: 1},
        quantum_us=ms(10),
    )
    log_fwd, log_rev = CycleLog(), CycleLog()
    log_fwd.append(fwd)
    log_rev.append(rev)
    assert serialize_cycle_log(log_fwd) == serialize_cycle_log(log_rev)
