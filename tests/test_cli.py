"""Command-line interface."""

import pytest

from repro.cli.main import EXPERIMENTS, build_parser, main


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_no_command_prints_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out.lower()


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_demo_runs_and_reports(capsys):
    assert main(["demo", "--shares", "1,3", "--seconds", "5"]) == 0
    out = capsys.readouterr().out
    assert "achieved" in out
    assert "overhead" in out


def test_demo_rejects_bad_shares(capsys):
    assert main(["demo", "--shares", "0,-1"]) == 2


def test_run_fig7_outputs_table3(capsys):
    assert main(["run", "fig7"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "average relative error" in out


def test_run_with_csv(tmp_path, capsys):
    csv = tmp_path / "t3.csv"
    assert main(["run", "fig7", "--csv", str(csv)]) == 0
    assert csv.exists()
    assert "share" in csv.read_text().splitlines()[0]


def test_parser_structure():
    parser = build_parser()
    args = parser.parse_args(["run", "fig4", "--full", "--seed", "7"])
    assert args.experiment == "fig4"
    assert args.full
    assert args.seed == 7
    assert args.workers is None
    assert not args.no_cache


def test_parser_sweep_flags():
    parser = build_parser()
    args = parser.parse_args(["run", "fig5", "--workers", "3", "--no-cache"])
    assert args.workers == 3
    assert args.no_cache
    args = parser.parse_args(["report", "--workers", "2", "--no-cache"])
    assert args.workers == 2
    assert args.no_cache


def test_run_footer_reports_cache_hits_on_second_invocation(capsys):
    # Cold run computes and stores; the warm rerun is served entirely
    # from the content-addressed cache (REPRO_SWEEP_CACHE is pointed at
    # a per-test directory by the suite-wide fixture).
    assert main(["run", "fig7"]) == 0
    cold = capsys.readouterr().out
    assert "[sweep: 1 cells, 0 cache hits, 1 misses, 1 worker(s)]" in cold
    assert main(["run", "fig7"]) == 0
    warm = capsys.readouterr().out
    assert "[sweep: 1 cells, 1 cache hits, 0 misses, 1 worker(s)]" in warm
    # Identical table either way — the differential guarantee.
    assert cold.split("[sweep:")[0] == warm.split("[sweep:")[0]


def test_run_no_cache_recomputes(capsys):
    assert main(["run", "fig7"]) == 0
    capsys.readouterr()
    assert main(["run", "fig7", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "[sweep: 1 cells, 0 cache hits, 1 misses, 1 worker(s)]" in out
