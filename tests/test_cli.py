"""Command-line interface."""

import pytest

from repro.cli.main import EXPERIMENTS, build_parser, main


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_no_command_prints_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out.lower()


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_demo_runs_and_reports(capsys):
    assert main(["demo", "--shares", "1,3", "--seconds", "5"]) == 0
    out = capsys.readouterr().out
    assert "achieved" in out
    assert "overhead" in out


def test_demo_rejects_bad_shares(capsys):
    assert main(["demo", "--shares", "0,-1"]) == 2


def test_run_fig7_outputs_table3(capsys):
    assert main(["run", "fig7"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "average relative error" in out


def test_run_with_csv(tmp_path, capsys):
    csv = tmp_path / "t3.csv"
    assert main(["run", "fig7", "--csv", str(csv)]) == 0
    assert csv.exists()
    assert "share" in csv.read_text().splitlines()[0]


def test_parser_structure():
    parser = build_parser()
    args = parser.parse_args(["run", "fig4", "--full", "--seed", "7"])
    assert args.experiment == "fig4"
    assert args.full
    assert args.seed == 7
