"""Group-spec parsing for the live CLI."""

import pytest

from repro.cli.commands import parse_group_spec


def test_basic_spec():
    assert parse_group_spec("1x2,3x1") == [(1, 2), (3, 1)]


def test_default_size_is_one():
    assert parse_group_spec("5") == [(5, 1)]
    assert parse_group_spec("2,3") == [(2, 1), (3, 1)]


def test_whitespace_tolerated():
    assert parse_group_spec(" 1x2 , 3x1 ") == [(1, 2), (3, 1)]


def test_invalid_specs():
    for bad in ("", "0x2", "1x0", "-1x2", "ax2"):
        with pytest.raises(ValueError):
            parse_group_spec(bad)
