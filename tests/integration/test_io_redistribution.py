"""End-to-end Figure 6: redistribution when a process does I/O."""

import numpy as np
import pytest

from repro.experiments.io import run_io_experiment


@pytest.fixture(scope="module")
def io_result():
    return run_io_experiment(total_cycles=700, warmup_cpu_s=6.0, seed=0)


def test_steady_state_is_one_two_three(io_result):
    steady = io_result.mean_shares(io_result.steady_mask)
    assert steady[0] == pytest.approx(100 / 6, abs=1.5)
    assert steady[1] == pytest.approx(200 / 6, abs=1.5)
    assert steady[2] == pytest.approx(300 / 6, abs=1.5)


def test_io_phase_detected(io_result):
    assert 0 < io_result.io_start_cycle < len(io_result.cycle_indices)
    assert io_result.blocked_mask.sum() > 10


def test_blocked_cycles_redistribute_one_to_three(io_result):
    """While B blocks, A and C split its share 1:3 (25 % / 75 %)."""
    blocked = io_result.mean_shares(io_result.blocked_mask)
    assert blocked[0] == pytest.approx(25.0, abs=4.0)
    assert blocked[1] < 12.0  # B nearly absent
    assert blocked[2] == pytest.approx(75.0, abs=6.0)


def test_active_cycles_keep_one_two_three(io_result):
    active = io_result.mean_shares(io_result.active_mask)
    # B's duty cycle straddles cycle boundaries, so tolerances are
    # looser than steady state, but the ordering must hold.
    assert active[0] < active[1] < active[2]
    assert active[1] == pytest.approx(100 / 3, abs=6.0)
