"""End-to-end: ALPS achieves the paper's headline accuracy claims."""

import numpy as np
import pytest

from repro.alps.config import AlpsConfig
from repro.metrics.accuracy import mean_rms_relative_error, per_subject_fractions
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.shares import ShareDistribution, workload_shares


def test_one_two_three_proportions():
    cw = build_controlled_workload([1, 2, 3], AlpsConfig(quantum_us=ms(10)), seed=0)
    cw.engine.run_until(sec(30))
    fr = per_subject_fractions(cw.agent.cycle_log, skip=5)
    assert fr[0] == pytest.approx(1 / 6, abs=0.01)
    assert fr[1] == pytest.approx(2 / 6, abs=0.01)
    assert fr[2] == pytest.approx(3 / 6, abs=0.01)


@pytest.mark.parametrize(
    "model", [ShareDistribution.LINEAR, ShareDistribution.EQUAL]
)
def test_error_under_five_percent_for_nonskewed(model):
    """Paper §3.1: 'For most workloads, the RMS relative error is low,
    less than 5%.'"""
    shares = workload_shares(model, 5)
    cw = build_controlled_workload(shares, AlpsConfig(quantum_us=ms(10)), seed=1)
    cw.engine.run_until(sec(40))
    err = mean_rms_relative_error(cw.agent.cycle_log, skip=5)
    assert err < 5.0


def test_skewed_error_highest_and_improves_with_smaller_quantum():
    """Paper §3.1: skewed has the highest error; smaller Q minimizes it."""
    shares = workload_shares(ShareDistribution.SKEWED, 10)
    errs = {}
    for q_ms in (10, 40):
        cw = build_controlled_workload(
            shares, AlpsConfig(quantum_us=ms(q_ms)), seed=2
        )
        target_cycles = 40
        while len(cw.agent.cycle_log) < target_cycles and cw.kernel.now < sec(600):
            cw.engine.run_until(cw.kernel.now + sec(10))
        errs[q_ms] = mean_rms_relative_error(cw.agent.cycle_log, skip=5)
    assert errs[10] < errs[40]

    equal = build_controlled_workload(
        workload_shares(ShareDistribution.EQUAL, 10),
        AlpsConfig(quantum_us=ms(40)),
        seed=2,
    )
    while len(equal.agent.cycle_log) < 40 and equal.kernel.now < sec(600):
        equal.engine.run_until(equal.kernel.now + sec(10))
    equal_err = mean_rms_relative_error(equal.agent.cycle_log, skip=5)
    assert errs[40] > equal_err


def test_overhead_under_one_percent():
    """Paper abstract: 'low overhead (under 1% of CPU)'."""
    for model in ShareDistribution:
        shares = workload_shares(model, 10)
        cw = build_controlled_workload(shares, AlpsConfig(quantum_us=ms(10)), seed=0)
        cw.engine.run_until(sec(20))
        assert cw.overhead_fraction() < 0.01


def test_optimization_reduces_overhead_materially():
    """Paper §3.2: optimization cuts overhead by 1.8–5.9×."""
    shares = workload_shares(ShareDistribution.EQUAL, 10)
    results = {}
    for optimized in (True, False):
        cw = build_controlled_workload(
            shares, AlpsConfig(quantum_us=ms(10), optimized=optimized), seed=0
        )
        cw.engine.run_until(sec(20))
        results[optimized] = cw.kernel.getrusage(cw.alps_proc.pid)
    factor = results[False] / results[True]
    assert factor > 1.5
