"""The shipped examples must keep running (smoke, subprocess)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

pytestmark = pytest.mark.slow


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "mean per-cycle RMS relative error" in out
    assert "ALPS overhead" in out


def test_adaptive_mesh():
    out = run_example("adaptive_mesh.py")
    assert "Before refinement" in out
    assert "After refinement" in out


def test_multi_tenant():
    out = run_example("multi_tenant.py")
    assert "Table 3 (reproduced)" in out
    assert "average relative error" in out


@pytest.mark.hostos
def test_live_alps():
    out = run_example("live_alps.py", "3")
    assert "achieved" in out
    assert "cycles completed" in out
