"""End-to-end Figures 8/9: ALPS loses control past a process-count
threshold, and the threshold follows the Section 4.2 fair-share model."""

import pytest

from repro.experiments.scalability import (
    analyze_breakdown,
    run_scalability_point,
    scalability_sweep,
)

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def sweep():
    return scalability_sweep(
        sizes=(5, 10, 20, 30, 40, 60, 80),
        quanta_ms=(10, 40),
        cycles=25,
        max_wall_s=150.0,
    )


def test_overhead_grows_linearly_before_breakdown(sweep):
    pts = sorted(
        (p for p in sweep if p.quantum_ms == 10 and p.n <= 30), key=lambda p: p.n
    )
    overheads = [p.overhead_pct for p in pts]
    assert all(b > a for a, b in zip(overheads, overheads[1:]))


def test_error_explodes_past_threshold(sweep):
    by_n = {p.n: p for p in sweep if p.quantum_ms == 10}
    assert by_n[10].mean_rms_error_pct < 10.0
    assert by_n[60].mean_rms_error_pct > 25.0


def test_larger_quantum_extends_threshold(sweep):
    """Paper: thresholds 40 (Q=10 ms) < 90 (Q=40 ms)."""
    q10 = {p.n: p.mean_rms_error_pct for p in sweep if p.quantum_ms == 10}
    q40 = {p.n: p.mean_rms_error_pct for p in sweep if p.quantum_ms == 40}
    # At N=60 the 10 ms configuration is broken, the 40 ms one is not.
    assert q10[60] > 25.0
    assert q40[60] < q10[60]


def test_breakdown_prediction_near_observation(sweep):
    analyses = analyze_breakdown(sweep)
    a10 = next(a for a in analyses if a.quantum_ms == 10)
    assert a10.fit.slope > 0
    # Paper predicts 39 and observes 40 for Q=10 ms; accept a band.
    assert 20 <= a10.predicted_n <= 70
    if a10.observed_n is not None:
        assert a10.observed_n == pytest.approx(a10.predicted_n, rel=0.6)


def test_overhead_stays_modest_even_past_breakdown(sweep):
    """Paper: 'the overhead of ALPS does not exceed 2.5%'."""
    assert all(p.overhead_pct < 3.0 for p in sweep)
