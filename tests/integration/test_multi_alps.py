"""End-to-end Figure 7 / Table 3: multiple concurrent ALPSs."""

import pytest

from repro.experiments.multi import run_multi_alps_experiment


@pytest.fixture(scope="module")
def result():
    return run_multi_alps_experiment(seed=0)


def test_every_running_phase_matches_targets(result):
    """Paper Table 3: per-group relative errors are small (avg 0.93 %,
    max 3.3 %)."""
    rows = result.table3()
    assert len(rows) == 9
    errors = []
    for row in rows:
        for phase in (1, 2, 3):
            err = row[f"phase{phase}_relerr"]
            if err is not None:
                errors.append(err)
    assert errors
    assert max(errors) < 6.0
    assert sum(errors) / len(errors) < 3.0


def test_groups_only_run_in_their_phases(result):
    rows = result.table3()
    by_group = {row["group"]: row for row in rows if row["share"] in (1, 4, 7)}
    # Group C (started last) has no phase-1 or phase-2 data.
    assert by_group["C"]["phase1_pct"] is None
    assert by_group["C"]["phase2_pct"] is None
    assert by_group["C"]["phase3_pct"] is not None
    # Group B has no phase-1 data.
    assert by_group["B"]["phase1_pct"] is None
    assert by_group["B"]["phase2_pct"] is not None
    # Group A runs in every phase.
    assert by_group["A"]["phase1_pct"] is not None


def test_existing_processes_slow_down_as_phases_begin(result):
    """Figure 7: each new group reduces the absolute rate of existing
    processes (the kernel spreads CPU over more processes)."""
    import numpy as np

    s = result.series["A2"]  # 9-share process of group A
    def rate(window):
        lo, hi = window
        mask = (s.times_us >= lo) & (s.times_us <= hi)
        t, v = s.times_us[mask], s.cumulative_us[mask]
        return np.polyfit(t, v, 1)[0]

    r1 = rate(result.phase_windows[1])
    r2 = rate(result.phase_windows[2])
    r3 = rate(result.phase_windows[3])
    assert r1 > r2 > r3
