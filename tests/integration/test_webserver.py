"""End-to-end Section 5: web-server isolation (scaled-down run)."""

import pytest

from repro.experiments.webserver import run_webserver_experiment

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def result():
    # Reduced client count / window keeps the test fast; the CPU is
    # still saturated, which is what the experiment requires.
    return run_webserver_experiment(
        n_clients=150, warmup_s=10.0, measure_s=25.0, seed=0
    )


def test_baseline_roughly_even(result):
    fr = result.baseline_fractions
    for f in fr:
        assert f == pytest.approx(1 / 3, abs=0.07)


def test_alps_reapportions_one_two_three(result):
    fr = result.alps_fractions
    assert fr[0] == pytest.approx(1 / 6, abs=0.05)
    assert fr[1] == pytest.approx(2 / 6, abs=0.05)
    assert fr[2] == pytest.approx(3 / 6, abs=0.05)


def test_total_throughput_not_destroyed(result):
    """ALPS redistributes; it must not collapse total service rate."""
    assert sum(result.alps_rps) > 0.75 * sum(result.baseline_rps)


def test_alps_overhead_small(result):
    assert result.alps_overhead_pct < 2.0


def test_db_not_the_bottleneck(result):
    assert result.db_utilization < 0.95


def test_latency_orders_inversely_with_share(result):
    """More CPU share ⇒ lower median response time under saturation."""
    p50 = result.alps_p50_ms
    assert p50[0] > p50[1] > p50[2]


def test_regulated_pools_preserve_isolation():
    """Dynamic (MinSpare/MaxSpare) pools don't break the 1:2:3 split —
    principals adopt and suspend newly forked workers correctly."""
    r = run_webserver_experiment(
        n_clients=120, warmup_s=10.0, measure_s=20.0, seed=1, regulated=True
    )
    fr = r.alps_fractions
    assert fr[0] == pytest.approx(1 / 6, abs=0.06)
    assert fr[2] == pytest.approx(3 / 6, abs=0.06)
