"""Bit-exact determinism across identical runs."""

import pytest

from repro.alps.config import AlpsConfig
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload


def _fingerprint(seed):
    cw = build_controlled_workload([2, 3, 5], AlpsConfig(quantum_us=ms(10)), seed=seed)
    cw.engine.run_until(sec(8))
    return (
        cw.engine.events_processed,
        cw.kernel.context_switches,
        tuple(cw.kernel.getrusage(w.pid) for w in cw.workers),
        tuple(
            (rec.index, rec.end_time, tuple(sorted(rec.consumed.items())))
            for rec in cw.agent.cycle_log
        ),
    )


def test_same_seed_identical_everything():
    assert _fingerprint(7) == _fingerprint(7)


def test_webserver_deterministic():
    from repro.experiments.webserver import _run_one

    a = _run_one(
        shares=(1, 2, 3), quantum_ms=100.0, n_clients=60, max_workers=8,
        warmup_s=4.0, measure_s=8.0, seed=3,
    )
    b = _run_one(
        shares=(1, 2, 3), quantum_ms=100.0, n_clients=60, max_workers=8,
        warmup_s=4.0, measure_s=8.0, seed=3,
    )
    assert a == b


def test_different_seeds_differ():
    # Pure CPU-bound workloads share no randomness except phases, so
    # compare the web model, which draws request sizes.
    from repro.experiments.webserver import _run_one

    a = _run_one(
        shares=None, quantum_ms=100.0, n_clients=60, max_workers=8,
        warmup_s=4.0, measure_s=8.0, seed=1,
    )
    b = _run_one(
        shares=None, quantum_ms=100.0, n_clients=60, max_workers=8,
        warmup_s=4.0, measure_s=8.0, seed=2,
    )
    assert a != b
