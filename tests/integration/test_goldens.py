"""Golden regression tests: pin the calibrated reproduction numbers.

These freeze the key measured values (with bands) so that future
changes to the kernel model or the ALPS implementation that would
*silently* drift the reproduction away from the paper fail loudly.
Bands are deliberately tighter than the paper-shape assertions in the
benchmarks: they guard this codebase against itself, not against the
paper.
"""

import pytest

from repro.alps.config import AlpsConfig
from repro.experiments.common import run_for_cycles
from repro.metrics.accuracy import mean_rms_relative_error, per_subject_fractions
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.shares import ShareDistribution, workload_shares

pytestmark = pytest.mark.slow


def _error(model, n, q_ms, *, cycles=40, seed=0):
    cw = build_controlled_workload(
        workload_shares(model, n), AlpsConfig(quantum_us=ms(q_ms)), seed=seed
    )
    run_for_cycles(cw, cycles + 5)
    return mean_rms_relative_error(cw.agent.cycle_log, skip=5)


def test_golden_skewed20_q10():
    # Calibrated value 6.08 % (seed 0, 40 cycles).
    assert _error(ShareDistribution.SKEWED, 20, 10) == pytest.approx(6.1, abs=2.0)


def test_golden_equal10_q10():
    # Calibrated value ~2.3 %.
    assert _error(ShareDistribution.EQUAL, 10, 10) == pytest.approx(2.3, abs=1.5)


def test_golden_overhead_equal20_q10():
    cw = build_controlled_workload(
        workload_shares(ShareDistribution.EQUAL, 20),
        AlpsConfig(quantum_us=ms(10)),
        seed=0,
    )
    run_for_cycles(cw, 45)
    # Calibrated ~0.45 % (paper's U10 line gives 1.34 % at N=20 for the
    # 5-shares-per-process scalability config; Table 2's equal20 uses
    # 20 shares per process, postponing reads 4x longer).
    assert 100 * cw.overhead_fraction() == pytest.approx(0.45, abs=0.2)


def test_golden_quickstart_fractions():
    cw = build_controlled_workload([1, 2, 3], AlpsConfig(quantum_us=ms(10)), seed=0)
    cw.engine.run_until(sec(30))
    fr = per_subject_fractions(cw.agent.cycle_log, skip=5)
    assert fr[0] == pytest.approx(1 / 6, abs=0.006)
    assert fr[1] == pytest.approx(2 / 6, abs=0.006)
    assert fr[2] == pytest.approx(3 / 6, abs=0.006)


def test_golden_breakdown_knee_q10():
    from repro.experiments.scalability import run_scalability_point

    below = run_scalability_point(30, 10, cycles=20, max_wall_s=120.0)
    above = run_scalability_point(60, 10, cycles=20, max_wall_s=120.0)
    assert below.mean_rms_error_pct < 12.0
    assert above.mean_rms_error_pct > 25.0
