"""The sweep scheduler: ordering, caching, retry, timeout, degradation."""

from __future__ import annotations

import time
import warnings

import pytest

from repro.errors import SweepCellError, SweepCellTimeoutError
from repro.sweep import SweepCache, SweepCell, SweepSpec, run_sweep
from repro.sweep.cache import logical_key

CALLS: list[int] = []  # serial-mode workers run in-process
FLAKY_FAILURES: dict[int, int] = {}


def _double(params):  # module-level: picklable
    CALLS.append(params["x"])
    return {"y": params["x"] * 2}


def _boom(params):
    if params["x"] == 3:
        raise ValueError("cell exploded")
    return {"y": params["x"]}


def _flaky(params):
    from repro.errors import TransientReadError

    remaining = FLAKY_FAILURES.get(params["x"], 0)
    if remaining:
        FLAKY_FAILURES[params["x"]] = remaining - 1
        raise TransientReadError(f"transient #{remaining}")
    return {"y": params["x"]}


def _sleepy(params):
    time.sleep(params["x"])
    return {"y": params["x"]}


def _cells(xs, experiment="test.double"):
    return [SweepCell(experiment, {"x": x}) for x in xs]


def _spec(xs, worker=_double, **kwargs):
    return SweepSpec(worker=worker, cells=_cells(xs), **kwargs)


def test_results_are_ordered_and_streamed(tmp_path):
    streamed = []
    outcome = run_sweep(
        _spec([3, 1, 2]), workers=1, on_result=streamed.append
    )
    assert outcome.values == [{"y": 6}, {"y": 2}, {"y": 4}]
    assert [r.cell.params["x"] for r in streamed] == [3, 1, 2]
    assert all(not r.cached and r.attempts == 1 for r in outcome.results)


def test_pooled_matches_serial_order():
    serial = run_sweep(_spec(list(range(8))), workers=1)
    pooled = run_sweep(_spec(list(range(8))), workers=4)
    assert serial.values == pooled.values


def test_cache_hits_short_circuit_the_worker(tmp_path):
    cache = SweepCache(tmp_path / "c")
    CALLS.clear()
    cold = run_sweep(_spec([1, 2, 3]), workers=1, cache=cache)
    assert CALLS == [1, 2, 3]
    assert (cold.stats.hits, cold.stats.misses, cold.stats.stores) == (0, 3, 3)

    warm = run_sweep(
        _spec([1, 2, 3]), workers=1, cache=SweepCache(tmp_path / "c")
    )
    assert CALLS == [1, 2, 3]  # workers never invoked on hits
    assert (warm.stats.hits, warm.stats.misses) == (3, 0)
    assert warm.values == cold.values
    assert all(r.cached and r.attempts == 0 for r in warm.results)
    assert warm.footer() == "[sweep: 3 cells, 3 cache hits, 0 misses, 1 worker(s)]"


def test_partial_hits_only_compute_the_misses(tmp_path):
    cache = SweepCache(tmp_path / "c")
    run_sweep(_spec([1, 2]), workers=1, cache=cache)
    CALLS.clear()
    outcome = run_sweep(
        _spec([1, 2, 3, 4]), workers=1, cache=SweepCache(tmp_path / "c")
    )
    assert CALLS == [3, 4]
    assert (outcome.stats.hits, outcome.stats.misses) == (2, 2)
    assert outcome.values == [{"y": 2}, {"y": 4}, {"y": 6}, {"y": 8}]


def test_uncacheable_spec_never_touches_the_cache(tmp_path):
    cache = SweepCache(tmp_path / "c")
    run_sweep(_spec([1, 2], cacheable=False), workers=1, cache=cache)
    again = run_sweep(_spec([1, 2], cacheable=False), workers=1, cache=cache)
    assert cache.stats.lookups == 0
    assert again.stats.misses == 2  # counted as computed, not looked up


def test_worker_exception_names_the_failing_cell():
    with pytest.raises(SweepCellError, match="cell exploded") as info:
        run_sweep(_spec([1, 2, 3, 4], worker=_boom), workers=1)
    assert info.value.experiment == "test.double"
    assert info.value.params == {"x": 3}


def test_transient_errors_are_retried():
    FLAKY_FAILURES.clear()
    FLAKY_FAILURES[2] = 1  # fails once, then succeeds
    outcome = run_sweep(_spec([1, 2], worker=_flaky), workers=1, retries=1)
    assert outcome.values == [{"y": 1}, {"y": 2}]
    assert outcome.results[1].attempts == 2

    FLAKY_FAILURES[2] = 5  # more failures than the retry budget
    with pytest.raises(SweepCellError, match="transient"):
        run_sweep(_spec([1, 2], worker=_flaky), workers=1, retries=1)


def test_cell_timeout_raises_after_retries():
    with pytest.raises(SweepCellTimeoutError, match="timed out"):
        run_sweep(
            _spec([2.0, 2.0], worker=_sleepy),
            workers=2,
            timeout_s=0.2,
            retries=0,
        )


def test_unpicklable_worker_degrades_to_serial():
    captured = []
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        outcome = run_sweep(
            SweepSpec(
                worker=lambda params: {"y": params["x"]},
                cells=_cells([1, 2, 3]),
            ),
            workers=4,
            on_result=captured.append,
        )
    assert outcome.values == [{"y": 1}, {"y": 2}, {"y": 3}]
    assert any("serially" in str(w.message) for w in caught)


def test_code_change_invalidates_and_replaces(tmp_path, monkeypatch):
    # Simulate a code edit by varying the fingerprint the scheduler
    # computes: same logical config, different full key.
    import repro.sweep.scheduler as sched

    cache = SweepCache(tmp_path / "c")
    monkeypatch.setattr(sched, "code_fingerprint", lambda mods: "rev1")
    run_sweep(_spec([5]), workers=1, cache=cache)
    monkeypatch.setattr(sched, "code_fingerprint", lambda mods: "rev2")
    outcome = run_sweep(_spec([5]), workers=1, cache=cache)
    assert outcome.stats.misses == 1  # rev1 blob must not be served
    assert outcome.stats.invalidations == 1
    # Only one blob survives per logical configuration.
    logical = logical_key("test.double", {"x": 5})
    blobs = [
        p for p in (tmp_path / "c").rglob("*.json")
        if "index" not in p.parts and p.name != "stats.json"
    ]
    assert len(blobs) == 1
    assert (tmp_path / "c" / "index" / logical[:2] / f"{logical}.json").exists()


def test_corrupt_blob_is_a_miss_and_recomputed(tmp_path):
    cache = SweepCache(tmp_path / "c")
    outcome = run_sweep(_spec([7]), workers=1, cache=cache)
    key = outcome.results[0].key
    blob = tmp_path / "c" / key[:2] / f"{key}.json"
    blob.write_text("{not json")
    again = run_sweep(
        _spec([7]), workers=1, cache=SweepCache(tmp_path / "c")
    )
    assert again.stats.misses == 1
    assert again.values == [{"y": 14}]


def test_persistent_stats_accumulate_across_runs(tmp_path):
    from repro.sweep.cache import load_persistent_stats

    root = tmp_path / "c"
    run_sweep(_spec([1, 2]), workers=1, cache=SweepCache(root))
    run_sweep(_spec([1, 2]), workers=1, cache=SweepCache(root))
    lifetime = load_persistent_stats(root)
    assert lifetime.hits == 2
    assert lifetime.misses == 2
    assert lifetime.stores == 2


def test_attach_sweep_metrics_exports_counters(tmp_path):
    from repro.obs.registry import MetricsRegistry
    from repro.sweep.cache import attach_sweep_metrics

    root = tmp_path / "c"
    run_sweep(_spec([1]), workers=1, cache=SweepCache(root))
    registry = MetricsRegistry()
    attach_sweep_metrics(registry, root=root)
    assert registry.get("repro_sweep_cache_misses_lifetime").value == 1
    assert registry.get("repro_sweep_cache_stores_lifetime").value == 1
