"""Differential guarantee: cached results are byte-identical to fresh.

Runs the Table 2 workload matrix (all nine model × size combinations,
seeds 0-2, benchmark-sized cycle counts) three ways — cold through the
cache, warm from the cache, and fresh with no cache — and asserts the
canonical JSON encodings agree byte for byte.  This is the property
that makes ``repro report`` safely incremental: a cache hit can never
change a reported number.
"""

from __future__ import annotations

import json

from repro.experiments.accuracy import (
    accuracy_cell,
    accuracy_point_from_payload,
    run_accuracy_cell,
)
from repro.sweep import SweepCache, SweepSpec, run_sweep
from repro.workloads.shares import DISTRIBUTIONS


def _table2_spec() -> SweepSpec:
    return SweepSpec(
        worker=run_accuracy_cell,
        cells=[
            accuracy_cell(model, n, 10.0, cycles=5, seeds=(0, 1, 2))
            for model in DISTRIBUTIONS
            for n in (5, 10, 20)
        ],
    )


def _bytes(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def test_cached_and_fresh_results_byte_identical(tmp_path):
    cold = run_sweep(_table2_spec(), workers=1, cache=SweepCache(tmp_path / "c"))
    assert (cold.stats.hits, cold.stats.misses) == (0, 9)

    warm = run_sweep(_table2_spec(), workers=1, cache=SweepCache(tmp_path / "c"))
    assert (warm.stats.hits, warm.stats.misses) == (9, 0)

    fresh = run_sweep(_table2_spec(), workers=1, cache=None)

    for cold_v, warm_v, fresh_v in zip(cold.values, warm.values, fresh.values):
        assert _bytes(cold_v) == _bytes(warm_v) == _bytes(fresh_v)
        # The payload codec is an exact inverse: decoding a cached blob
        # and re-encoding it reproduces the same bytes.
        point = accuracy_point_from_payload(warm_v)
        from repro.experiments.accuracy import accuracy_point_payload

        assert _bytes(accuracy_point_payload(point)) == _bytes(warm_v)
