"""Cache-key stability: equal configs hash equal, any change moves the key.

The content-addressed cache is only sound if (a) the same logical
configuration produces the same key in every process and under every
dict ordering, and (b) every semantically meaningful change — seed,
quantum, fault plan, kernel config, or library source — produces a
different key.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.kernel.kconfig import KernelConfig
from repro.sweep.cache import cache_key, canonical_json, canonicalize, logical_key
from repro.sweep.fingerprint import clear_fingerprint_cache, code_fingerprint
from repro.workloads.shares import ShareDistribution

PARAMS = {
    "model": "skewed",
    "n": 10,
    "quantum_ms": 12.5,
    "cycles": 200,
    "seeds": [0, 1, 2],
}


def test_same_key_across_dict_orderings():
    reordered = dict(reversed(list(PARAMS.items())))
    assert PARAMS == reordered
    assert cache_key("fig4", PARAMS, "fp") == cache_key("fig4", reordered, "fp")
    assert logical_key("fig4", PARAMS) == logical_key("fig4", reordered)


def test_same_key_across_processes():
    src = Path(repro.__file__).resolve().parent.parent
    code = (
        "from repro.sweep.cache import cache_key\n"
        "print(cache_key('fig4', {'seeds': [0, 1, 2], 'cycles': 200,"
        " 'quantum_ms': 12.5, 'n': 10, 'model': 'skewed'}, 'fp'))\n"
    )
    env = dict(os.environ, PYTHONPATH=str(src), PYTHONHASHSEED="random")
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, check=True, env=env,
    )
    assert out.stdout.strip() == cache_key("fig4", PARAMS, "fp")


@pytest.mark.parametrize(
    "change",
    (
        {"seeds": [0, 1, 3]},
        {"quantum_ms": 12.500001},
        {"n": 11},
        {"cycles": 199},
    ),
)
def test_changed_param_changes_key(change):
    assert cache_key("fig4", dict(PARAMS, **change), "fp") != cache_key(
        "fig4", PARAMS, "fp"
    )


def test_experiment_id_and_fingerprint_are_part_of_the_key():
    assert cache_key("fig4", PARAMS, "fp") != cache_key("fig5", PARAMS, "fp")
    assert cache_key("fig4", PARAMS, "fp") != cache_key("fig4", PARAMS, "fp2")
    # ... but the logical key ignores the fingerprint (that is its job).
    assert logical_key("fig4", PARAMS) == logical_key("fig4", PARAMS)


def test_changed_fault_plan_changes_key():
    from repro.experiments.robustness import robustness_cell

    base = robustness_cell(0.1)
    faster = robustness_cell(0.2)
    no_crash = robustness_cell(0.1, agent_crash=False)
    fp = "fp"
    keys = {
        cache_key(c.experiment, c.params, fp) for c in (base, faster, no_crash)
    }
    assert len(keys) == 3


def test_dataclasses_and_enums_canonicalize_structurally():
    cfg = canonicalize(KernelConfig())
    assert cfg["__dataclass__"].endswith("KernelConfig")
    changed = canonicalize(KernelConfig(ctx_switch_us=0))
    assert cfg != changed
    assert canonical_json({"k": KernelConfig()}) != canonical_json(
        {"k": KernelConfig(ctx_switch_us=0)}
    )
    enum_form = canonicalize(ShareDistribution.SKEWED)
    assert enum_form["name"] == "SKEWED"


def test_numpy_scalars_canonicalize_to_exact_python_values():
    assert canonicalize(np.int64(7)) == 7
    assert canonicalize(np.float64(0.1)) == 0.1
    assert canonical_json({"a": np.int64(7)}) == canonical_json({"a": 7})


def test_uncanonicalizable_values_are_rejected():
    with pytest.raises(TypeError, match="canonicalize"):
        canonical_json({"fn": lambda: None})


def test_monkeypatched_module_source_changes_fingerprint(tmp_path, monkeypatch):
    pkg = tmp_path / "fp_probe_pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("X = 1\n")
    monkeypatch.syspath_prepend(str(tmp_path))
    try:
        clear_fingerprint_cache()
        before = code_fingerprint(("fp_probe_pkg",))
        # Memoized until explicitly cleared.
        (pkg / "__init__.py").write_text("X = 2\n")
        assert code_fingerprint(("fp_probe_pkg",)) == before
        clear_fingerprint_cache()
        after = code_fingerprint(("fp_probe_pkg",))
    finally:
        sys.modules.pop("fp_probe_pkg", None)
        clear_fingerprint_cache()
    assert before != after
    assert cache_key("e", PARAMS, before) != cache_key("e", PARAMS, after)


def test_repro_fingerprint_is_stable_within_a_process():
    assert code_fingerprint() == code_fingerprint()
