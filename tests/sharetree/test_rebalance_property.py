"""Hypothesis property: the rebalancer conserves membership.

Under arbitrary weight-mutation scripts against a running plane, three
invariants must hold after every mutation:

* every leaf sid is controlled by exactly one cell (none lost, none
  duplicated by a migration);
* a subtree's members are always co-located on the subtree's assigned
  cell (tenants never split across cells);
* the tree itself still conserves weight at every level.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.alps.config import AlpsConfig
from repro.sharetree import ShardedAlpsPlane, ShareTree
from repro.units import ms, sec


def build_tree(tenant_sizes) -> ShareTree:
    tree = ShareTree()
    sid = 0
    for i, size in enumerate(tenant_sizes):
        tree.group(f"t{i}", 1)
        for j in range(size):
            tree.leaf(f"t{i}/p{j}", sid=sid, weight=1)
            sid += 1
    return tree


mutations = st.lists(
    st.tuples(st.integers(0, 3), st.integers(1, 50)),  # (tenant, weight)
    min_size=1,
    max_size=6,
)


@given(
    tenant_sizes=st.lists(st.integers(1, 3), min_size=2, max_size=4),
    cells=st.integers(1, 3),
    script=mutations,
)
@settings(max_examples=25, deadline=None)
def test_membership_survives_arbitrary_weight_scripts(
    tenant_sizes, cells, script
):
    tree = build_tree(tenant_sizes)
    all_sids = {leaf.sid for leaf in tree.leaves()}
    plane = ShardedAlpsPlane(
        tree, AlpsConfig(quantum_us=ms(10)), cells=cells, seed=0
    )
    plane.run_until(sec(1))
    for tenant, weight in script:
        path = f"t{tenant % len(tenant_sizes)}"
        plane.set_weight(path, weight)
        members = plane.members()
        union = set().union(*members.values()) if members else set()
        # 1. No sid lost or duplicated by the migration.
        assert union == all_sids
        assert sum(len(s) for s in members.values()) == len(all_sids)
        # 2. Tenants are never split across cells.
        for node in tree.subtrees():
            cells_of = {
                plane.cell_of_sid(leaf.sid) for leaf in tree.leaves(node)
            }
            assert cells_of == {plane.assignment[node.name]}
        # 3. The tree still conserves weight everywhere.
        tree.check_conservation()
        plane.run_until(plane.kernel.now + sec(1) // 2)
    # After the dust settles the plane still runs and attains CPU.
    plane.run_until(plane.kernel.now + sec(2))
    assert sum(plane.attained_us().values()) > 0
