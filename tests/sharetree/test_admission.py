"""Per-subtree admission gates composing with the agent and HostAlps."""

from __future__ import annotations

import pytest

from repro.alps.config import AlpsConfig
from repro.alps.subjects import ProcessSubject
from repro.errors import SchedulerConfigError
from repro.obs import Observer
from repro.sharetree import ShareTree
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.spinner import spinner_behavior


def gated_workload(*, capacity=2, observer=None):
    """Tenant t (capacity-gated) with two members, tenant open with one."""
    tree = ShareTree()
    tree.group("t", 2, capacity=capacity)
    tree.leaf("t/p0", sid=0, weight=1)
    tree.leaf("t/p1", sid=1, weight=1)
    tree.group("open", 1)
    tree.leaf("open/q0", sid=2, weight=1)
    cw = build_controlled_workload(
        [1, 1, 1],
        AlpsConfig(quantum_us=ms(10)),
        seed=0,
        observer=observer,
        sharetree=tree,
    )
    return cw, tree


def submit(cw, sid, path, share=1):
    proc = cw.kernel.spawn(f"arrival-{sid}", spinner_behavior(), uid=900)
    subject = ProcessSubject(sid=sid, share=share, pid=proc.pid)
    return proc, cw.agent.submit_subject(subject, cw.kernel.kapi, path=path)


def test_path_submit_requires_a_tree():
    cw = build_controlled_workload(
        [1, 1], AlpsConfig(quantum_us=ms(10)), seed=0
    )
    proc = cw.kernel.spawn("x", spinner_behavior(), uid=900)
    with pytest.raises(SchedulerConfigError):
        cw.agent.submit_subject(
            ProcessSubject(sid=9, share=1, pid=proc.pid),
            cw.kernel.kapi,
            path="t/x",
        )


def test_gated_subtree_queues_past_capacity():
    obs = Observer()
    cw, tree = gated_workload(capacity=2, observer=obs)
    cw.engine.run_until(sec(1))
    # t is full (2 members): the arrival queues at t's gate.
    _, admitted = submit(cw, sid=10, path="t/p2")
    assert not admitted
    assert tree.pending_admissions == 1
    assert tree.find_sid(10) is None  # not in the tree while queued
    # The open tenant is unaffected by t's backlog.
    _, open_admitted = submit(cw, sid=11, path="open/q1")
    assert open_admitted
    assert 11 in cw.agent.subjects
    # A death in t frees a slot; a later wake drains the gate FIFO.
    cw.kernel.kill(cw.workers[0].pid, 9)
    cw.engine.run_until(sec(4))
    assert 10 in cw.agent.subjects
    assert tree.find_sid(10) is not None
    assert tree.pending_admissions == 0
    kinds = [ev.kind for ev in obs.events.tail(len(obs.events))]
    assert "sharetree.queued" in kinds
    assert "sharetree.admitted" in kinds


def test_admitted_member_joins_the_subtree_split():
    cw, tree = gated_workload(capacity=3)
    cw.engine.run_until(sec(1))
    _, admitted = submit(cw, sid=10, path="t/p2", share=2)
    assert admitted
    # The new leaf reshapes t's internal split: weights 1:1:2.
    eff = tree.effective_shares()
    assert eff[10] == 2 * eff[0]
    assert cw.agent.subjects[10].share == eff[10]
    tree.check_conservation()


def test_dead_member_leaves_the_tree():
    cw, tree = gated_workload()
    cw.engine.run_until(sec(1))
    assert tree.find_sid(0) is not None
    cw.kernel.kill(cw.workers[0].pid, 9)
    cw.engine.run_until(sec(3))
    assert 0 not in cw.agent.subjects
    assert tree.find_sid(0) is None
    tree.check_conservation()


def test_ungated_path_admits_immediately():
    cw, tree = gated_workload()
    cw.engine.run_until(sec(1))
    _, admitted = submit(cw, sid=12, path="open/q2")
    assert admitted
    assert 12 in cw.agent.subjects


def test_queue_entry_for_vanished_branch_is_skipped():
    cw, tree = gated_workload(capacity=2)
    cw.engine.run_until(sec(1))
    _, admitted = submit(cw, sid=10, path="t/p2")
    assert not admitted
    # The whole tenant disappears while the arrival waits.
    for sid in (0, 1):
        cw.kernel.kill(cw.workers[sid].pid, 9)
    tree.remove("t")
    cw.engine.run_until(sec(3))
    assert 10 not in cw.agent.subjects
