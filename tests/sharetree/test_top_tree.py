"""The ``repro top --tree`` hierarchy renderer."""

from __future__ import annotations

import io

import pytest

from repro.alps.config import AlpsConfig
from repro.obs import Observer
from repro.obs.top import render_tree_frame, run_top
from repro.sharetree import demo_tree
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload


def _tree_workload():
    tree = demo_tree()
    leaf_weights = [1] * tree.leaf_count
    return build_controlled_workload(
        leaf_weights,
        AlpsConfig(quantum_us=ms(10)),
        seed=0,
        observer=Observer(),
        sharetree=tree,
    )


def test_tree_frame_requires_a_tree():
    cw = build_controlled_workload(
        [1, 2], AlpsConfig(quantum_us=ms(10)), seed=0
    )
    with pytest.raises(ValueError):
        render_tree_frame(cw)


def test_tree_frame_shows_indented_hierarchy():
    cw = _tree_workload()
    cw.engine.run_until(sec(2))
    frame = render_tree_frame(cw, skip_cycles=2)
    assert "repro top --tree" in frame
    assert "nodes=7" in frame and "depth=2" in frame
    lines = frame.splitlines()
    # Groups at depth 1 are flush left; their leaves are indented.
    assert any(line.startswith("a ") for line in lines)
    assert any(line.startswith("  a0") for line in lines)
    assert any(line.startswith("  b0") for line in lines)
    # Leaves carry their sid, groups show "-".
    a_row = next(line for line in lines if line.startswith("a "))
    assert " - " in a_row
    a0_row = next(line for line in lines if line.strip().startswith("a0"))
    assert " 0 " in a0_row


def test_tree_frame_tracks_targets():
    cw = _tree_workload()
    cw.engine.run_until(sec(4))
    frame = render_tree_frame(cw, skip_cycles=3)
    tree = cw.agent.sharetree
    # Tenant a's target is 3/6 = 50%; the rendered row must agree with
    # the tree's exact fraction and the attained column must be close.
    assert float(tree.fraction_of("a")) == pytest.approx(0.5)
    a_row = next(
        line for line in frame.splitlines() if line.startswith("a ")
    )
    assert "50.0%" in a_row


def test_tree_frame_is_pure():
    cw = _tree_workload()
    cw.engine.run_until(sec(1))
    assert render_tree_frame(cw) == render_tree_frame(cw)


def test_run_top_tree_mode():
    cw = _tree_workload()
    out = io.StringIO()
    rendered = run_top(
        cw, frame_us=ms(500), frames=2, interval_s=0, stream=out, tree=True
    )
    assert rendered == 2
    assert out.getvalue().count("repro top --tree") == 2
