"""Plane fault tolerance: supervision, salvage, fencing, guards."""

from __future__ import annotations

import pytest

from repro.alps.config import AlpsConfig
from repro.errors import MigrationTornError, TransientReadError
from repro.faults.plan import CellCrash, FaultPlan, MigrationTear
from repro.obs import Observer
from repro.resilience.supervisor import RestartPolicy
from repro.sharetree import ShardedAlpsPlane, demo_tree
from repro.sharetree.resilience import PlaneResilienceConfig
from repro.units import ms, sec


def make_plane(
    cells=2, *, plan=None, restart_budget=5, observer=None, seed=0
):
    return ShardedAlpsPlane(
        demo_tree(),
        AlpsConfig(quantum_us=ms(10)),
        cells=cells,
        seed=seed,
        observer=observer,
        resilience=PlaneResilienceConfig(
            policy=RestartPolicy(restart_budget=restart_budget),
            seed=seed,
            plan=plan if plan is not None else FaultPlan(),
        ),
    )


def all_pids_running(plane) -> bool:
    return not any(
        plane.kernel.is_stopped(proc.pid)
        for proc in plane.workers.values()
    )


# ---------------------------------------------------------------------------
# Supervision: within-budget restarts and budget-exhaustion re-homing
# ---------------------------------------------------------------------------
def test_null_plan_runs_clean():
    plane = make_plane()
    plane.run_until(sec(4))
    res = plane.resilience
    assert res.cell_crashes_injected == 0
    assert res.tears_injected == 0
    assert res.dead_cells == frozenset()
    assert res.cell_restarts == 0


def test_cell_crash_within_budget_restarts_in_place():
    obs = Observer()
    plan = FaultPlan(cell_crashes=(CellCrash(time_us=sec(1), cell=0),))
    plane = make_plane(plan=plan, observer=obs)
    before = plane.members()
    plane.run_until(sec(4))
    res = plane.resilience
    assert res.cell_crashes_injected == 1
    assert res.cell_restarts == 1
    assert res.dead_cells == frozenset()
    assert plane.members() == before  # nothing moved
    kinds = [ev.kind for ev in obs.events.tail(len(obs.events))]
    assert "plane.cell_crash" in kinds
    assert "plane.cell_restart" in kinds
    assert "plane.cell_dead" not in kinds
    # The restarted cell still enforces afterwards.
    attained = plane.attained_us()
    assert attained[0] > 0 and attained[1] > 0


def test_budget_exhaustion_rehomes_subtrees_onto_survivors():
    obs = Observer()
    plan = FaultPlan(
        cell_crashes=tuple(
            CellCrash(time_us=sec(1) + i * ms(100), cell=0)
            for i in range(3)
        )
    )
    plane = make_plane(plan=plan, restart_budget=1, observer=obs)
    plane.run_until(sec(4))
    res = plane.resilience
    assert res.dead_cells == frozenset({0})
    assert res.rehomes == 1
    assert res.rehomed_leaves == 2  # tenant a's two leaves
    # Every subject now lives on the surviving cell; the dead cell owns
    # nothing and the shard map routes around it.
    assert not plane.agents[0].subjects
    assert plane.members()[1] == {0, 1, 2, 3}
    assert set(plane.assignment.values()) == {1}
    assert 0 not in set(plane.assignment.values())
    # Health record: death and re-home are both stamped.
    health = res.health[0]
    assert health.dead and health.state == "dead"
    assert health.died_at_us is not None
    assert health.rehomed_at_us is not None
    assert health.rehomed_at_us >= health.died_at_us
    assert res.last_rehome_us == health.rehomed_at_us
    kinds = [ev.kind for ev in obs.events.tail(len(obs.events))]
    assert "plane.cell_dead" in kinds
    assert "plane.rehome" in kinds
    # No process was left wedged by the dead controller.
    plane.run_until(sec(5))
    for agent in plane.agents.values():
        if agent.subjects:
            agent.shutdown(plane.kernel.kapi)
    assert all_pids_running(plane)


def test_rehomed_plane_keeps_enforcing_proportions():
    plan = FaultPlan(
        cell_crashes=tuple(
            CellCrash(time_us=sec(1) + i * ms(100), cell=0)
            for i in range(3)
        )
    )
    plane = make_plane(plan=plan, restart_budget=1)
    plane.run_until(sec(2))
    kapi = plane.kernel.kapi
    base = {
        sid: kapi.getrusage(proc.pid)
        for sid, proc in plane.workers.items()
    }
    plane.run_until(sec(10))
    delta = {
        sid: kapi.getrusage(proc.pid) - base[sid]
        for sid, proc in plane.workers.items()
    }
    # Post-failover, the surviving cell owns everything: effective
    # shares {0: 6, 1: 3, 2: 6, 3: 3} must hold across the whole set.
    assert delta[0] / delta[1] == pytest.approx(2.0, rel=0.15)
    assert delta[2] / delta[3] == pytest.approx(2.0, rel=0.15)


# ---------------------------------------------------------------------------
# Two-phase migration: tears, salvage, rollback, fencing
# ---------------------------------------------------------------------------
def test_crash_mode_tear_is_salvaged_on_next_tick():
    obs = Observer()
    plan = FaultPlan(
        migration_tears=(
            MigrationTear(time_us=sec(1), after_ops=1, crash=True),
        )
    )
    plane = make_plane(plan=plan, observer=obs)
    plane.run_until(sec(2))
    before = plane.members()
    with pytest.raises(MigrationTornError) as exc:
        plane.set_weight("c", 5)  # forces c to migrate, tear fires
    assert exc.value.crash
    res = plane.resilience
    assert res.crashed  # controller "died" mid-batch
    assert res.torn_intent() is not None  # intent journaled, no commit
    # The next maintenance tick salvages: membership partition restored
    # exactly, the intent closed, and nothing left stopped.
    plane.run_until(sec(3))
    assert not res.crashed
    assert res.torn_intent() is None
    assert res.salvages == 1
    assert plane.members() == before
    kinds = [ev.kind for ev in obs.events.tail(len(obs.events))]
    assert "plane.migration_tear" in kinds
    assert "plane.salvage" in kinds
    plane.run_until(sec(4))
    for agent in plane.agents.values():
        agent.shutdown(plane.kernel.kapi)
    assert all_pids_running(plane)


def test_exception_mode_tear_rolls_back_in_process():
    obs = Observer()
    plan = FaultPlan(
        migration_tears=(
            MigrationTear(time_us=sec(1), after_ops=1, crash=False),
        )
    )
    plane = make_plane(plan=plan, observer=obs)
    plane.run_until(sec(2))
    before = plane.members()
    with pytest.raises(MigrationTornError) as exc:
        plane.set_weight("c", 5)
    assert not exc.value.crash
    res = plane.resilience
    # The readmit guard already restored the partition before the
    # exception propagated — no salvage needed, nothing stranded.
    assert not res.crashed
    assert plane.members() == before
    assert res.readmits >= 1
    kinds = [ev.kind for ev in obs.events.tail(len(obs.events))]
    assert "plane.migration_readmit" in kinds
    plane.run_until(sec(3))
    for agent in plane.agents.values():
        agent.shutdown(plane.kernel.kapi)
    assert all_pids_running(plane)


def test_salvage_completes_forward_when_destination_adopted():
    plane = make_plane()
    plane.run_until(sec(1))
    res = plane.resilience
    # Hand-tear a migration after the destination adopted one leaf:
    # move tenant a (sids 0,1) from cell 0 to cell 1, stopping after
    # sid 0's adopt — exactly the torn state a controller crash leaves.
    kapi = plane.kernel.kapi
    epoch = res.begin_migration([("a", 0, 1, [(0, "a/a0"), (1, "a/a1")])])
    subj = plane.agents[0].release_subject(0, kapi)
    plane.agents[1].adopt_subject(subj, kapi)
    res.note_owner(0, 1, epoch)
    released = plane.agents[0].release_subject(1, kapi)  # torn here
    assert plane.cell_of_sid(1) is None  # stranded outside every cell
    del released  # the in-memory Subject dies with the "controller"
    placed = res.salvage()
    # Forward completion: sid 1 joins sid 0 on the destination cell.
    assert placed == 1
    assert plane.members()[1] == {0, 1, 2, 3}
    assert not plane.agents[0].subjects
    assert plane.assignment["a"] == 1
    assert res.torn_intent() is None


def test_salvage_respects_the_epoch_fence():
    plane = make_plane()
    plane.run_until(sec(1))
    res = plane.resilience
    kapi = plane.kernel.kapi
    # A torn intent at epoch E...
    epoch = res.begin_migration([("a", 0, 1, [(0, "a/a0"), (1, "a/a1")])])
    subj = plane.agents[0].release_subject(0, kapi)
    plane.agents[1].adopt_subject(subj, kapi)
    res.note_owner(0, 1, epoch)
    # ...but sid 1 was since moved by a newer epoch (split-brain): the
    # stale intent must not yank it.
    res.note_owner(1, 0, epoch + 1)
    res.salvage()
    assert res.fenced_adopts == 1
    assert plane.cell_of_sid(1) == 0  # untouched by the stale intent
    assert plane.cell_of_sid(0) == 1


def test_fence_semantics():
    plane = make_plane()
    res = plane.resilience
    res.note_owner(7, 0, 3)
    assert res.fence_ok(7, 3)
    assert res.fence_ok(7, 4)
    assert not res.fence_ok(7, 2)
    assert res.fence_ok(99, 0)  # unknown sids are never fenced


# ---------------------------------------------------------------------------
# Guarded adoption: bounded retries, readmit on exhaustion
# ---------------------------------------------------------------------------
def test_adopt_retries_transient_failures_then_succeeds(monkeypatch):
    plane = make_plane()
    plane.run_until(sec(1))
    dst = plane.agents[0]  # c will move to cell 0 when it outweighs a
    real_adopt = dst.adopt_subject
    failures = iter([True, True, False])

    def flaky_adopt(subject, kapi):
        if next(failures):
            raise TransientReadError(subject.pid)
        return real_adopt(subject, kapi)

    monkeypatch.setattr(dst, "adopt_subject", flaky_adopt)
    plane.set_weight("c", 5)
    assert plane.resilience.adopt_retries == 2
    assert plane.cell_of_sid(3) == 0


def test_adopt_retry_exhaustion_readmits_to_source(monkeypatch):
    plane = make_plane()
    plane.run_until(sec(1))
    before = plane.members()
    dst = plane.agents[0]

    def always_fails(subject, kapi):
        raise TransientReadError(subject.pid)

    monkeypatch.setattr(dst, "adopt_subject", always_fails)
    with pytest.raises(TransientReadError):
        plane.set_weight("c", 5)
    monkeypatch.undo()
    res = plane.resilience
    # adopt_retries budget exhausted (N retries + the final attempt);
    # the guard readmitted the subject, so the partition is whole.
    assert res.adopt_retries == res.config.adopt_retries + 1
    assert res.readmits == 1
    assert plane.members() == before
    plane.run_until(sec(2))
    for agent in plane.agents.values():
        agent.shutdown(plane.kernel.kapi)
    assert all_pids_running(plane)


# ---------------------------------------------------------------------------
# Event ordering and the migration journal
# ---------------------------------------------------------------------------
def test_migrate_events_emitted_only_after_adoptions_complete():
    obs = Observer()
    plane = make_plane(observer=obs)
    plane.run_until(sec(1))
    plane.set_weight("c", 5)
    kinds = [ev.kind for ev in obs.events.tail(len(obs.events))]
    intent = kinds.index("plane.migration_intent")
    begin = kinds.index("sharetree.migrate.begin")
    migrate = kinds.index("sharetree.migrate")
    commit = kinds.index("sharetree.migrate.commit")
    plane_commit = kinds.index("plane.migration_commit")
    assert intent < begin < migrate < commit < plane_commit


def test_commit_closes_the_intent_and_bumps_the_epoch():
    plane = make_plane()
    plane.run_until(sec(1))
    res = plane.resilience
    assert res.epoch == 0
    plane.set_weight("c", 5)
    assert res.epoch == 1
    assert res.torn_intent() is None  # committed
    plane.set_weight("c", 1)
    assert res.epoch == 2


def test_cell_journal_write_faults_are_counted():
    plan = FaultPlan(
        cell_crashes=(CellCrash(time_us=sec(1), cell=0),),
        journal_write_fail_prob=0.5,
        journal_torn_write_prob=0.25,
    )
    plane = make_plane(plan=plan, seed=3)
    plane.run_until(sec(4))
    res = plane.resilience
    # The per-cell state journals took real write faults, and the
    # crashed cell still recovered (journaled or re-baselined).
    assert res.journal_writes_lost + res.journal_writes_torn > 0
    assert res.cell_restarts == 1
    assert res.dead_cells == frozenset()
