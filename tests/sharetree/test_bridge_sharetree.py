"""Share-tree gauges exported through the metrics bridge."""

from __future__ import annotations

import pytest

from repro.alps.config import AlpsConfig
from repro.obs import Observer, collect_workload
from repro.sharetree import demo_tree
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload


def _run(sharetree=None):
    shares = [1] * (sharetree.leaf_count if sharetree else 3)
    cw = build_controlled_workload(
        shares,
        AlpsConfig(quantum_us=ms(10)),
        seed=0,
        observer=Observer(),
        sharetree=sharetree,
    )
    cw.engine.run_until(sec(2))
    return collect_workload(cw).metrics


def test_tree_gauges_present_with_a_tree():
    reg = _run(sharetree=demo_tree())
    assert reg.get("alps_sharetree_depth").value == 2
    assert reg.get("alps_sharetree_nodes").value == 7
    assert reg.get("alps_sharetree_leaves").value == 4
    assert reg.get("alps_sharetree_pending_admissions").value == 0
    assert reg.get("alps_sharetree_migrations").value == 0
    assert reg.get("alps_sharetree_reweighs").value == 0


def test_subtree_series_carry_path_labels():
    reg = _run(sharetree=demo_tree())
    lbl = {"path": "a"}
    assert reg.get("alps_subtree_weight", lbl).value == 3
    target = reg.get("alps_subtree_target_fraction", lbl).value
    assert target == pytest.approx(0.5)
    got = reg.get("alps_subtree_attained_fraction", lbl).value
    assert got == pytest.approx(target, abs=0.06)
    assert reg.get("alps_subtree_weight", {"path": "c"}).value == 1


def test_tree_series_absent_without_a_tree():
    reg = _run(sharetree=None)
    assert reg.get("alps_sharetree_depth") is None
    assert reg.get("alps_subtree_weight", {"path": "a"}) is None
    # The flat-series contract is untouched.
    assert reg.get("alps_subject_share", {"sid": "0"}).value == 1
