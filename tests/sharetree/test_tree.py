"""ShareTree unit behavior: construction, resolution, mutation."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import SchedulerConfigError
from repro.sharetree import ShareTree, demo_tree


def test_worked_example_resolves_exactly():
    """The docs chapter's demo: a(3){a0:2, a1:1}, b(2){b0}, c(1){c0}."""
    tree = demo_tree()
    assert tree.effective_shares() == {0: 6, 1: 3, 2: 6, 3: 3}
    assert tree.fraction_of("a") == Fraction(1, 2)
    assert tree.fraction_of("a/a0") == Fraction(1, 3)
    assert tree.fraction_of("a/a1") == Fraction(1, 6)
    assert tree.fraction_of("b") == Fraction(1, 3)
    assert tree.fraction_of("c/c0") == Fraction(1, 6)
    assert tree.depth == 2
    assert tree.node_count == 7
    assert tree.leaf_count == 4
    tree.check_conservation()


def test_flat_tree_returns_raw_weights_verbatim():
    """The flat-equivalence identity: depth-1 resolution is the input."""
    for shares in ([5, 5, 5, 5, 5], [1, 2, 4, 8, 16], [7, 3, 3, 1], [1]):
        tree = ShareTree.flat(shares)
        assert tree.effective_shares() == dict(enumerate(shares))
        assert tree.depth == 1


def test_deeper_nesting_multiplies_fractions():
    tree = ShareTree()
    tree.group("u", 1)
    tree.group("u/g", 1)
    tree.leaf("u/g/p", sid=0, weight=1)
    tree.group("v", 2)
    tree.leaf("v/q", sid=1, weight=1)
    assert tree.fraction_of("u/g/p") == Fraction(1, 3)
    assert tree.fraction_of("v/q") == Fraction(2, 3)
    eff = tree.effective_shares()
    assert eff[1] == 2 * eff[0]
    tree.check_conservation()


def test_effective_weight_of_groups_is_exact_and_conserved():
    tree = demo_tree()
    total = sum(tree.effective_shares().values())
    assert tree.effective_weight("a") == total // 2
    assert tree.effective_weight("a") == (
        tree.effective_shares()[0] + tree.effective_shares()[1]
    )


def test_construction_errors():
    tree = ShareTree()
    tree.group("g", 1)
    tree.leaf("g/p", sid=0, weight=1)
    with pytest.raises(SchedulerConfigError):
        tree.node("nope")
    with pytest.raises(SchedulerConfigError):
        tree.group("g", 2)  # duplicate path
    with pytest.raises(SchedulerConfigError):
        tree.leaf("g/q", sid=0, weight=1)  # duplicate sid
    with pytest.raises(SchedulerConfigError):
        tree.group("g/p/x", 1)  # attach under a leaf
    with pytest.raises(SchedulerConfigError):
        tree.group("bad", 0)  # non-positive weight
    with pytest.raises(SchedulerConfigError):
        tree.set_weight("", 2)  # the root carries no weight
    with pytest.raises(SchedulerConfigError):
        tree.remove("")


def test_remove_prunes_subtree_and_sid_index():
    tree = demo_tree()
    tree.remove("a")
    assert tree.find_sid(0) is None and tree.find_sid(1) is None
    assert tree.leaf_count == 2
    assert set(tree.effective_shares()) == {2, 3}
    tree.check_conservation()


def test_discard_sid_is_idempotent():
    tree = demo_tree()
    assert tree.discard_sid(3)
    assert not tree.discard_sid(3)
    assert tree.leaf_count == 3


def test_set_weight_counts_only_real_changes():
    tree = demo_tree()
    before = tree.effective_shares()
    tree.set_weight("a", 3)  # no-op
    assert tree.reweighs == 0
    assert tree.effective_shares() == before
    tree.set_weight("a", 1)
    assert tree.reweighs == 1
    assert tree.effective_shares() != before
    tree.check_conservation()


def test_admission_gate_resolution_walks_to_nearest_ancestor():
    tree = ShareTree()
    tree.group("t", 1, capacity=2)
    tree.group("t/inner", 1)
    tree.leaf("t/inner/p", sid=0, weight=1)
    tree.group("open", 1)
    tree.leaf("open/q", sid=1, weight=1)
    gate = tree.admission_for(tree.node("t/inner"))
    assert gate is tree.node("t")
    assert tree.admission_for(tree.node("open")) is None
    assert tree.gates() == [tree.node("t")]
    assert tree.pending_admissions == 0


def test_removing_a_gate_unregisters_it():
    tree = ShareTree()
    tree.group("t", 1, capacity=1)
    tree.leaf("t/p", sid=0, weight=1)
    tree.remove("t")
    assert tree.gates() == []
