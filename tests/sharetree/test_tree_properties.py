"""Hypothesis properties of the share tree's effective-share math.

Three invariants over randomly generated trees:

* **conservation at every level** — each group's effective weight is
  exactly the sum of its children's (and the root's total is the sum of
  all leaf shares);
* **exact proportionality** — the integer effective shares preserve
  every leaf's recursive fraction with zero rounding error;
* **flat identity** — depth-1 trees resolve to their raw weights
  verbatim, for arbitrary share lists (the schedule-invisibility
  precondition pinned byte-for-byte in ``test_flat_equivalence.py``).
"""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.sharetree import ShareTree

weights = st.integers(1, 9)


@st.composite
def share_trees(draw) -> ShareTree:
    """A random tree: 1–3 levels of groups over 1–4 leaves per branch."""
    tree = ShareTree()
    sid = 0
    n_top = draw(st.integers(1, 4))
    for i in range(n_top):
        depth = draw(st.integers(1, 3))
        if depth == 1:
            tree.leaf(f"n{i}", sid=sid, weight=draw(weights))
            sid += 1
            continue
        tree.group(f"n{i}", draw(weights))
        prefix = f"n{i}"
        for lvl in range(depth - 2):
            tree.group(f"{prefix}/g", draw(weights))
            prefix = f"{prefix}/g"
        for j in range(draw(st.integers(1, 4))):
            tree.leaf(f"{prefix}/l{j}", sid=sid, weight=draw(weights))
            sid += 1
    return tree


@given(tree=share_trees())
@settings(max_examples=150, deadline=None)
def test_conservation_holds_at_every_level(tree):
    tree.check_conservation()
    eff = tree.effective_shares()
    total = sum(eff.values())
    for node in tree.subtrees():
        assert tree.effective_weight(node.path) == sum(
            eff[leaf.sid] for leaf in tree.leaves(node)
        )
    assert sum(tree.effective_weight(n.path) for n in tree.subtrees()) == total


@given(tree=share_trees())
@settings(max_examples=150, deadline=None)
def test_effective_shares_preserve_exact_fractions(tree):
    eff = tree.effective_shares()
    total = sum(eff.values())
    assert all(share >= 1 for share in eff.values())
    for leaf in tree.leaves():
        assert Fraction(eff[leaf.sid], total) == tree.fraction_of(leaf.path)
    assert sum(
        (tree.fraction_of(leaf.path) for leaf in tree.leaves()),
        Fraction(0),
    ) == 1


@given(shares=st.lists(st.integers(1, 100), min_size=1, max_size=20))
@settings(max_examples=150, deadline=None)
def test_flat_trees_resolve_to_raw_weights(shares):
    assert ShareTree.flat(shares).effective_shares() == dict(
        enumerate(shares)
    )


@given(tree=share_trees(), data=st.data())
@settings(max_examples=80, deadline=None)
def test_conservation_survives_arbitrary_reweighs(tree, data):
    paths = [n.path for n in tree.nodes()]
    for _ in range(data.draw(st.integers(0, 6))):
        path = data.draw(st.sampled_from(paths))
        tree.set_weight(path, data.draw(weights))
    tree.check_conservation()
