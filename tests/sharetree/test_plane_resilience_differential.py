"""Plane resilience is schedule-invisible when no fault fires.

The PR 1/3 differential discipline, applied to the plane stack: over a
matrix of trees x cell counts x seeds — with mid-run weight mutations
forcing real migrations through the journaled two-phase path — a plane
built with ``resilience=PlaneResilienceConfig()`` (null fault plan)
must produce a byte-identical engine trace, the same membership
partition, and the same per-sid attained CPU as a bare plane.  Arming
supervision, write-ahead intent/commit journaling, and the epoch fence
costs nothing until a fault actually fires.

A companion check pins that the flag is not a dummy: an injected
:class:`~repro.faults.plan.CellCrash` really does change the schedule
(the restart sleep is visible in the trace).
"""

from __future__ import annotations

import pytest

from repro.alps.config import AlpsConfig
from repro.faults.plan import CellCrash, FaultPlan
from repro.resilience.chaos import plane_episode_tree
from repro.sharetree import ShardedAlpsPlane, demo_tree
from repro.sharetree.resilience import PlaneResilienceConfig
from repro.sim.trace import Tracer
from repro.units import ms, sec

HORIZON_US = sec(3)

#: (tree factory, subtree to mutate, (bumped weight, original weight)).
TREES = {
    "demo": (demo_tree, "c", (5, 1)),
    "episode": (plane_episode_tree, "t0", (9, 4)),
}


def run_plane(tree_key, *, cells, seed, resilience, tracer=None):
    factory, path, (bump, orig) = TREES[tree_key]
    plane = ShardedAlpsPlane(
        factory(),
        AlpsConfig(quantum_us=ms(10)),
        cells=cells,
        seed=seed,
        resilience=resilience,
        tracer=tracer,
    )
    # Two mutations force migrations through whatever rebalance path
    # the stack uses (journaled two-phase when resilience is armed).
    plane.run_until(sec(1))
    plane.set_weight(path, bump)
    plane.run_until(sec(2))
    plane.set_weight(path, orig)
    plane.run_until(HORIZON_US)
    return plane


@pytest.mark.parametrize("tree_key", sorted(TREES))
@pytest.mark.parametrize("cells", [1, 2, 3])
@pytest.mark.parametrize("seed", [0, 1])
def test_null_plan_resilience_is_byte_identical(tree_key, cells, seed):
    bare_tracer = Tracer(enabled=True)
    bare = run_plane(
        tree_key, cells=cells, seed=seed, resilience=None,
        tracer=bare_tracer,
    )
    armed_tracer = Tracer(enabled=True)
    armed = run_plane(
        tree_key, cells=cells, seed=seed,
        resilience=PlaneResilienceConfig(),
        tracer=armed_tracer,
    )
    label = f"tree={tree_key} cells={cells} seed={seed}"
    assert bare_tracer.lines() == armed_tracer.lines(), (
        f"{label}: engine trace diverged under null-plan resilience"
    )
    assert bare.members() == armed.members(), label
    assert bare.assignment == armed.assignment, label
    assert bare.attained_us() == armed.attained_us(), label
    assert bare.migrations == armed.migrations, label
    # And the armed stack really was armed, not silently absent: when
    # the mutations actually migrated subtrees, they went through the
    # journaled two-phase path (epoch bumped, intent committed).
    res = armed.resilience
    assert res is not None
    if armed.migrations:
        assert res.epoch >= 1
    assert res.torn_intent() is None
    assert res.salvages == 0 and res.rehomes == 0


def test_injected_cell_crash_really_changes_the_schedule():
    """The differential above is not vacuous: a real fault diverges."""
    quiet_tracer = Tracer(enabled=True)
    run_plane(
        "demo", cells=2, seed=0, resilience=PlaneResilienceConfig(),
        tracer=quiet_tracer,
    )
    crashed_tracer = Tracer(enabled=True)
    run_plane(
        "demo", cells=2, seed=0,
        resilience=PlaneResilienceConfig(
            plan=FaultPlan(
                cell_crashes=(CellCrash(time_us=sec(1), cell=0),)
            )
        ),
        tracer=crashed_tracer,
    )
    assert quiet_tracer.lines() != crashed_tracer.lines()
