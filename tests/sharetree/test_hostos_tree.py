"""HostAlps with an attached share tree (no live processes needed)."""

from __future__ import annotations

import os

import pytest

from repro.errors import HostOSError
from repro.hostos.controller import HostAlps
from repro.sharetree import ShareTree


def test_flat_tree_attach_leaves_shares_untouched():
    shares = {11: 1, 12: 2, 13: 4}
    tree = ShareTree.flat(shares)
    assert tree.effective_shares() == shares  # mapping form: sids = pids
    bare = HostAlps(dict(shares), quantum_s=0.05)
    treed = HostAlps(dict(shares), quantum_s=0.05, sharetree=tree)
    assert {
        pid: s.share for pid, s in treed.core.subjects.items()
    } == {pid: s.share for pid, s in bare.core.subjects.items()}


def test_nonflat_tree_resolves_effective_shares_at_attach():
    tree = ShareTree()
    tree.group("g", 4)
    tree.leaf("g/a", sid=11, weight=1)
    tree.leaf("g/b", sid=12, weight=1)
    tree.leaf("c", sid=13, weight=1)
    alps = HostAlps({11: 1, 12: 1, 13: 1}, quantum_s=0.05, sharetree=tree)
    assert {
        pid: s.share for pid, s in alps.core.subjects.items()
    } == tree.effective_shares()


def test_path_submit_requires_a_tree():
    alps = HostAlps({os.getpid(): 1}, quantum_s=0.05)
    with pytest.raises(HostOSError):
        alps.submit_pid(os.getpid(), 1, path="g/x")
    with pytest.raises(HostOSError):
        alps.set_tree_weight("g", 2)


def test_tree_submit_places_the_pid_and_reweighs():
    tree = ShareTree()
    tree.group("g", 2)
    tree.leaf("g/a", sid=os.getpid(), weight=1)
    alps = HostAlps({os.getpid(): 1}, quantum_s=0.05, sharetree=tree)
    child = os.getppid()  # any live pid we can read from /proc
    assert alps.submit_pid(child, 1, path="g/b")
    assert tree.find_sid(child) is not None
    assert alps.core.subjects[child].share == tree.effective_shares()[child]


def test_set_tree_weight_reweighs_the_core():
    tree = ShareTree()
    tree.group("g", 1)
    tree.leaf("g/a", sid=os.getpid(), weight=1)
    tree.group("h", 1)
    tree.leaf("h/b", sid=1, weight=1)
    alps = HostAlps({os.getpid(): 1, 1: 1}, quantum_s=0.05, sharetree=tree)
    alps.set_tree_weight("g", 3)
    eff = tree.effective_shares()
    assert eff[os.getpid()] == 3 * eff[1]
    assert alps.core.subjects[os.getpid()].share == eff[os.getpid()]
