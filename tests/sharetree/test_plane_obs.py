"""Plane observability: ``top --tree --cells`` and the metrics bridge."""

from __future__ import annotations

import io

from repro.alps.config import AlpsConfig
from repro.faults.plan import CellCrash, FaultPlan
from repro.obs import Observer, collect_plane, render_plane_frame, run_plane_top
from repro.resilience.supervisor import RestartPolicy
from repro.sharetree import ShardedAlpsPlane, demo_tree
from repro.sharetree.resilience import PlaneResilienceConfig
from repro.units import ms, sec


def make_plane(*, resilience=None, observer=None):
    return ShardedAlpsPlane(
        demo_tree(),
        AlpsConfig(quantum_us=ms(10)),
        cells=2,
        seed=0,
        observer=observer,
        resilience=resilience,
    )


def dead_cell_config():
    return PlaneResilienceConfig(
        policy=RestartPolicy(restart_budget=1),
        plan=FaultPlan(
            cell_crashes=tuple(
                CellCrash(time_us=sec(1) + i * ms(100), cell=0)
                for i in range(3)
            )
        ),
    )


# ---------------------------------------------------------------------------
# Frame rendering
# ---------------------------------------------------------------------------
def test_plane_frame_shows_cells_and_health():
    plane = make_plane(resilience=PlaneResilienceConfig())
    plane.run_until(sec(2))
    frame = render_plane_frame(plane)
    assert "repro top --tree --cells" in frame
    assert "cells=2" in frame
    assert "plane: epoch=0 rehomes=0 salvages=0" in frame
    # One health line per cell, with its owned subtrees.
    assert "cell 0:" in frame and "cell 1:" in frame
    assert "subtrees=a" in frame
    assert "subtrees=b,c" in frame
    # Leaf rows carry their owning cell; the CELL column is populated.
    a0_row = next(
        line for line in frame.splitlines() if line.strip().startswith("a0")
    )
    assert " 0 " in a0_row  # sid 0, cell 0


def test_plane_frame_marks_dead_and_rehomed_cells():
    plane = make_plane(resilience=dead_cell_config())
    plane.run_until(sec(4))
    frame = render_plane_frame(plane)
    assert "dead" in frame
    assert "died@" in frame and "rehomed@" in frame
    assert "rehomes=1" in frame
    # The dead cell owns nothing; everything lives on cell 1.
    cell0 = next(
        line for line in frame.splitlines() if line.startswith("cell 0:")
    )
    assert "leaves=0" in cell0 and "subtrees=-" in cell0


def test_plane_frame_works_without_resilience():
    plane = make_plane()
    plane.run_until(sec(1))
    frame = render_plane_frame(plane)
    assert "plane: epoch=" not in frame  # no stack, no stack line
    assert "cell 0: running" in frame
    assert render_plane_frame(plane) == frame  # pure


def test_run_plane_top_renders_frames():
    plane = make_plane(resilience=PlaneResilienceConfig())
    out = io.StringIO()
    rendered = run_plane_top(
        plane, frame_us=ms(500), frames=2, interval_s=0, stream=out
    )
    assert rendered == 2
    assert out.getvalue().count("repro top --tree --cells") == 2
    assert plane.engine.now == sec(1)


# ---------------------------------------------------------------------------
# Metrics bridge
# ---------------------------------------------------------------------------
def _metric(obs, name, **labels):
    inst = obs.metrics.get(name, labels or None)
    assert inst is not None, f"metric {name} {labels} missing"
    return inst.value


def test_collect_plane_exports_the_failover_census():
    obs = Observer()
    plane = make_plane(resilience=dead_cell_config(), observer=obs)
    plane.run_until(sec(4))
    collect_plane(plane)
    assert _metric(obs, "alps_plane_cells") == 2
    assert _metric(obs, "alps_plane_dead_cells") == 1
    assert _metric(obs, "alps_plane_rehomes") == 1
    assert _metric(obs, "alps_plane_rehomed_leaves") == 2
    assert _metric(obs, "alps_plane_cell_dead", cell="0") == 1
    assert _metric(obs, "alps_plane_cell_dead", cell="1") == 0
    assert _metric(obs, "alps_plane_cell_leaves", cell="1") == 4
    assert _metric(obs, "alps_plane_cell_crashes") == 2  # budget+1 fired
    assert _metric(obs, "alps_plane_last_rehome_us") > 0


def test_collect_plane_without_resilience_or_observer():
    plane = make_plane()
    plane.run_until(sec(1))
    obs = collect_plane(plane)  # fresh observer created on demand
    assert _metric(obs, "alps_plane_cells") == 2
    assert _metric(obs, "alps_plane_cell_leaves", cell="0") == 2
    assert obs.metrics.get("alps_plane_epoch") is None  # resilience-only
