"""The Gunther ratios-vs-guarantees experiment module."""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.experiments.sharetree import (
    SHARETREE_EXPERIMENT,
    TENANT_WEIGHT,
    gunther_tree,
    run_sharetree_cell,
    run_sharetree_point,
    sharetree_cell,
    sharetree_point_from_payload,
    sharetree_sweep_spec,
    throughput_variation,
)


def test_gunther_tree_shape():
    tree = gunther_tree(3)
    assert tree.leaf_count == 5  # a0, a1, three sibling workers
    assert tree.effective_shares() == {sid: 2 for sid in range(5)}
    assert float(tree.fraction_of("a")) == pytest.approx(2 / 5)
    tree.check_conservation()
    with pytest.raises(ValueError):
        gunther_tree(0)


def test_single_cell_point_pins_the_ratio():
    point = run_sharetree_point(2, cycles=20, horizon_s=6.0)
    assert point.share_ratio == float(TENANT_WEIGHT)
    assert point.attained_ratio == pytest.approx(2.0, rel=0.05)
    assert point.ratio_error_pct < 5.0
    assert point.tenant_fraction == pytest.approx(0.5, abs=0.03)
    assert point.cycles_completed > 0
    assert point.migrations == 0


def test_throughput_falls_while_ratio_holds():
    low = run_sharetree_point(1, cycles=20, horizon_s=6.0)
    high = run_sharetree_point(8, cycles=20, horizon_s=6.0)
    for p in (low, high):
        assert p.attained_ratio == pytest.approx(2.0, rel=0.05)
    assert low.tenant_us_per_s / high.tenant_us_per_s >= 2.0
    assert throughput_variation([low, high]) >= 2.0


def test_sharded_point_keeps_the_ratio():
    point = run_sharetree_point(4, cells=2, horizon_s=5.0)
    assert point.cells == 2
    assert point.attained_ratio == pytest.approx(2.0, rel=0.1)


def test_cell_worker_and_payload_roundtrip():
    cell = sharetree_cell(2, cycles=10, horizon_s=4.0)
    assert cell.experiment == SHARETREE_EXPERIMENT
    payload = run_sharetree_cell(cell.params)
    point = sharetree_point_from_payload(payload)
    assert point.k == 2
    assert asdict(point) == payload


def test_sweep_spec_enumerates_the_grid():
    spec = sharetree_sweep_spec(
        sibling_counts=(1, 4), cell_counts=(1, 2)
    )
    assert len(spec.cells) == 4
    ks = {(c.params["k"], c.params["cells"]) for c in spec.cells}
    assert ks == {(1, 1), (4, 1), (1, 2), (4, 2)}


def test_throughput_variation_degenerate_cases():
    assert throughput_variation([]) == 1.0
    single = run_sharetree_point(1, cycles=8, horizon_s=3.0)
    assert throughput_variation([single]) == 1.0
