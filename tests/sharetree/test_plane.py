"""ShardedAlpsPlane: partitioning, enforcement, migration mechanics."""

from __future__ import annotations

import pytest

from repro.alps.config import AlpsConfig
from repro.errors import SchedulerConfigError
from repro.obs import Observer
from repro.sharetree import ShardedAlpsPlane, ShareTree, demo_tree
from repro.units import ms, sec


def make_plane(cells=2, *, tree=None, observer=None, seed=0):
    return ShardedAlpsPlane(
        tree if tree is not None else demo_tree(),
        AlpsConfig(quantum_us=ms(10)),
        cells=cells,
        seed=seed,
        observer=observer,
    )


def test_partition_is_greedy_and_deterministic():
    plane = make_plane(cells=2)
    # Subtree effective weights are a=9, b=6, c=3 (scale 18): LPT puts
    # a alone on cell 0 and b+c together on cell 1.
    assert plane.assignment == {"a": 0, "b": 1, "c": 1}
    assert make_plane(cells=2).assignment == plane.assignment
    assert set(plane.agents) == {0, 1}
    assert plane.members() == {0: {0, 1}, 1: {2, 3}}


def test_single_cell_owns_everything():
    plane = make_plane(cells=1)
    assert set(plane.assignment.values()) == {0}
    assert plane.members() == {0: {0, 1, 2, 3}}


def test_construction_errors():
    with pytest.raises(SchedulerConfigError):
        make_plane(cells=0)
    with pytest.raises(SchedulerConfigError):
        ShardedAlpsPlane(ShareTree(), AlpsConfig(quantum_us=ms(10)))
    groups_only = ShareTree()
    groups_only.group("g", 1)
    with pytest.raises(SchedulerConfigError):
        ShardedAlpsPlane(groups_only, AlpsConfig(quantum_us=ms(10)))


def test_cells_enforce_their_subtrees_proportions():
    plane = make_plane(cells=2)
    plane.run_until(sec(8))
    attained = plane.attained_us()
    # Cell 0 owns a: a0 gets 2x a1 (weights 2:1 inside the tenant).
    assert attained[0] / attained[1] == pytest.approx(2.0, rel=0.05)
    # Cell 1 owns b+c: b0 gets 2x c0 (subtree weights 2:1).
    assert attained[2] / attained[3] == pytest.approx(2.0, rel=0.05)
    assert plane.overhead_fraction() < 0.05


def test_set_weight_triggers_migration_and_events():
    obs = Observer()
    plane = make_plane(cells=2, observer=obs)
    plane.run_until(sec(2))
    # Make c the heaviest subtree: the greedy partition re-ranks and
    # whole subtrees migrate between cells.
    plane.set_weight("c", 5)
    assert plane.assignment["c"] == 0
    assert plane.migrations > 0
    assert plane.tree.migrations == plane.migrations
    assert plane.rebalances == 1
    # Membership conserved: every sid controlled by exactly one cell.
    members = plane.members()
    all_sids = set().union(*members.values())
    assert all_sids == {0, 1, 2, 3}
    assert sum(len(s) for s in members.values()) == len(all_sids)
    kinds = [ev.kind for ev in obs.events.tail(len(obs.events))]
    assert "sharetree.reweigh" in kinds
    assert "sharetree.migrate" in kinds
    assert "sharetree.rebalance" in kinds
    # The plane keeps running and enforcing after the migration.
    plane.run_until(sec(6))
    assert plane.cell_of_sid(3) == plane.assignment["c"]


def test_noop_rebalance_moves_nothing():
    plane = make_plane(cells=2)
    plane.run_until(sec(1))
    assert plane.rebalance() == 0
    assert plane.migrations == 0
    assert plane.rebalances == 0


def test_one_agent_per_subtree_when_cells_match():
    plane = make_plane(cells=3)
    assert len(plane.agents) == 3  # a, b, c each get their own cell
    assert [plane.assignment[n] for n in ("a", "b", "c")] == [0, 1, 2]
    plane.run_until(sec(1))
    assert plane.members() == {0: {0, 1}, 1: {2}, 2: {3}}


def test_migration_into_previously_empty_cell_spawns_an_agent(monkeypatch):
    # Zero-load LPT ties always fill cells 0..n-1, so with 4 cells and
    # 3 subtrees cell 3 starts — and stays — empty under pure reweighs.
    # Force the shard map there to exercise the lazy agent spawn that
    # guards the empty-cell destination.
    plane = make_plane(cells=4)
    empty = [c for c in range(4) if c not in plane.agents]
    assert empty == [3]
    plane.run_until(sec(1))
    forced = dict(plane.assignment, b=3)
    monkeypatch.setattr(
        plane, "_partition", lambda exclude=frozenset(): forced
    )
    moved = plane.rebalance()
    assert moved == 1
    assert plane.assignment["b"] == 3
    assert 3 in plane.agents  # the founding-group agent was spawned
    monkeypatch.undo()
    plane.run_until(sec(5))
    assert plane.cell_of_sid(2) == 3
    # The new cell enforces: b0 attains CPU under its fresh agent.
    assert plane.agents[3].cumulative_cpu_of(2) > 0
    members = plane.members()
    assert set().union(*members.values()) == {0, 1, 2, 3}


def test_agent_of_and_cell_of_sid():
    plane = make_plane(cells=2)
    assert plane.agent_of("a") is plane.agents[0]
    assert plane.agent_of("b") is plane.agents[1]
    with pytest.raises(SchedulerConfigError):
        plane.agent_of("nope")
    assert plane.cell_of_sid(0) == 0
    assert plane.cell_of_sid(99) is None


def test_released_subjects_are_never_left_stopped():
    """A migrating subject's stopped pids are resumed on release."""
    plane = make_plane(cells=2)
    plane.run_until(sec(2))
    src = plane.agents[1]
    kapi = plane.kernel.kapi
    subj = src.release_subject(2, kapi)
    assert subj.sid == 2
    proc = plane.workers[2]
    assert not proc.stopped
    dst = plane.agents[0]
    assert dst.adopt_subject(subj, kapi)
    assert 2 in dst.subjects
    with pytest.raises(SchedulerConfigError):
        src.release_subject(2, kapi)


def test_attach_emits_event_and_subtree_totals_aggregate():
    obs = Observer()
    plane = make_plane(cells=2, observer=obs)
    kinds = [ev.kind for ev in obs.events.tail(len(obs.events))]
    assert "sharetree.attach" in kinds
    plane.run_until(sec(4))
    per_subtree = plane.subtree_attained_us()
    per_sid = plane.attained_us()
    assert per_subtree["a"] == per_sid[0] + per_sid[1]
    assert per_subtree["b"] == per_sid[2]
