"""``repro run sharetree`` and the ``--smoke`` protocol."""

from __future__ import annotations

import pytest

from repro.cli.main import main


def test_list_includes_sharetree(capsys):
    assert main(["list"]) == 0
    assert "sharetree" in capsys.readouterr().out


def test_run_sharetree_smoke(capsys):
    rc = main(["run", "sharetree", "--smoke", "--no-cache"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "shares bound ratios, not guarantees" in out
    assert "siblings k" in out
    assert "never throughput" in out


def test_run_sharetree_smoke_csv(tmp_path, capsys):
    csv_path = tmp_path / "sharetree.csv"
    rc = main(
        ["run", "sharetree", "--smoke", "--no-cache", "--csv", str(csv_path)]
    )
    capsys.readouterr()
    assert rc == 0
    text = csv_path.read_text()
    assert "attained_ratio" in text.splitlines()[0]
    assert len(text.splitlines()) >= 3


def test_smoke_flag_rejected_for_other_experiments(capsys):
    with pytest.raises(SystemExit):
        main(["run", "overload", "--smoke"])
    assert "--smoke" in capsys.readouterr().err


def test_top_tree_cells_renders_the_plane_view(capsys):
    rc = main(
        ["top", "--tree", "--cells", "2", "--frames", "2",
         "--frame-ms", "200", "--interval", "0"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert out.count("repro top --tree --cells") == 2
    assert "plane: epoch=" in out  # the resilience stack is armed
    assert "cell 0:" in out and "cell 1:" in out


def test_top_rejects_non_positive_cells(capsys):
    rc = main(["top", "--tree", "--cells", "0", "--frames", "1"])
    assert rc == 2
    assert "--cells must be >= 1" in capsys.readouterr().out
