"""Flat-tree ≡ single-group: byte-identical schedule fingerprints.

The share tree's admission ticket: with a flat one-level tree attached
(``fingerprint_run(sharetree=True)``), every Table 2 workload must
produce *exactly* the bytes of the bare run — cycle log, event trace,
event count, final clock.  The tree resolves depth-1 weights verbatim
(unreduced arithmetic, see ``repro/sharetree/tree.py``) and
``AlpsCore.set_share`` no-ops on zero deltas, so the attach must be
schedule-invisible bare *and* stacked under the observer, the
crash-safety stack, and the overload guard.
"""

from __future__ import annotations

import pytest

from repro.perf.differential import TABLE2_SIZES, fingerprint_run
from repro.units import sec
from repro.workloads.shares import DISTRIBUTIONS, workload_shares

HORIZON_US = sec(2)


@pytest.mark.parametrize("model", DISTRIBUTIONS, ids=lambda m: m.value)
@pytest.mark.parametrize("n", TABLE2_SIZES)
@pytest.mark.parametrize("seed", (0, 1, 2))
def test_flat_tree_fingerprints_match_bare_over_table2(model, n, seed):
    shares = workload_shares(model, n)
    bare = fingerprint_run(shares, seed=seed, horizon_us=HORIZON_US)
    treed = fingerprint_run(
        shares, seed=seed, horizon_us=HORIZON_US, sharetree=True
    )
    assert bare == treed, (
        f"{model.value} n={n} seed={seed}: flat tree attach changed the "
        f"schedule ({bare.digest()} != {treed.digest()})"
    )


@pytest.mark.parametrize(
    "stack",
    [
        {"obs": True},
        {"overload": True},
        {"resilience": True},
        {"obs": True, "overload": True, "resilience": True},
    ],
    ids=lambda s: "+".join(sorted(s)),
)
@pytest.mark.parametrize("seed", (0, 1, 2))
def test_flat_tree_is_invisible_under_stacked_layers(stack, seed):
    shares = workload_shares(DISTRIBUTIONS[0], 10)
    bare = fingerprint_run(
        shares, seed=seed, horizon_us=HORIZON_US, **stack
    )
    treed = fingerprint_run(
        shares, seed=seed, horizon_us=HORIZON_US, sharetree=True, **stack
    )
    assert bare == treed, f"stack {stack} seed={seed} diverged"


def test_nonflat_tree_changes_the_schedule():
    """The flag is not a dummy: real hierarchy really reweighs."""
    from repro.alps.config import AlpsConfig
    from repro.sharetree import ShareTree
    from repro.sim.trace import Tracer
    from repro.units import ms
    from repro.workloads.scenarios import build_controlled_workload

    def run(tree):
        tracer = Tracer(enabled=True)
        cw = build_controlled_workload(
            [1, 1, 1],
            AlpsConfig(quantum_us=ms(10)),
            seed=0,
            tracer=tracer,
            sharetree=tree,
        )
        cw.engine.run_until(sec(2))
        return cw.agent.cycle_log[-1].shares

    # g(4){a, b} vs c(1): the pair inside g splits 4/5 of the machine,
    # so the resolved shares are 2:2:1 — nothing like the raw [1, 1, 1].
    bumped = ShareTree()
    bumped.group("g", 4)
    bumped.leaf("g/a", sid=0, weight=1)
    bumped.leaf("g/b", sid=1, weight=1)
    bumped.leaf("c", sid=2, weight=1)
    assert bumped.effective_shares() == {0: 4, 1: 4, 2: 2}
    flat_shares = run(None)
    treed_shares = run(bumped)
    assert flat_shares == {0: 1, 1: 1, 2: 1}
    assert treed_shares == {0: 4, 1: 4, 2: 2}
