"""Hypothesis property: plane fault tolerance conserves membership.

The PR 8 rebalance property (tests/sharetree/test_rebalance_property.py)
extended to the fault-tolerant plane: under arbitrary interleavings of
weight mutations, injected :class:`~repro.faults.plan.CellCrash` storms
(including budget-exhausting ones that force a re-home), and injected
:class:`~repro.faults.plan.MigrationTear` faults in both modes, after
every control step:

* every leaf sid is controlled by exactly one *live* cell (none lost,
  duplicated, stranded outside every cell, or left on a dead cell);
* tenants are never split across cells;

and at the end of the script every worker pid still exists and none is
wedged in SIGSTOP.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.alps.config import AlpsConfig
from repro.errors import MigrationTornError
from repro.faults.plan import CellCrash, FaultPlan, MigrationTear
from repro.resilience.chaos import audit_plane_partition
from repro.resilience.supervisor import RestartPolicy
from repro.sharetree import ShardedAlpsPlane, demo_tree
from repro.sharetree.resilience import PlaneResilienceConfig
from repro.units import ms

CELLS = 3
STEP_US = ms(300)
#: One in-budget restart per cell: two drawn crashes kill it, forcing
#: the escalation + re-home path into the interleaving space.
RESTART_BUDGET = 1

#: One scripted control step.  Crashes target cells 0/1 only so the
#: plane always keeps a live cell to re-home onto (a full quorum loss
#: is a different, terminal regime).
step_strategy = st.one_of(
    st.tuples(
        st.just("weight"), st.integers(0, 2), st.integers(1, 8)
    ),
    st.tuples(st.just("crash"), st.integers(0, 1), st.none()),
    st.tuples(
        st.just("tear"), st.booleans(), st.integers(0, 3)
    ),
)


@given(
    script=st.lists(step_strategy, min_size=1, max_size=6),
    seed=st.integers(0, 3),
)
@settings(max_examples=20, deadline=None)
def test_partition_survives_crash_and_tear_interleavings(script, seed):
    tree = demo_tree()
    all_sids = {leaf.sid for leaf in tree.leaves()}
    subtrees = [node.name for node in tree.subtrees()]
    # Faults are data: pin each drawn fault mid-way through its step.
    crashes = []
    tears = []
    for i, (op, a, b) in enumerate(script):
        at_us = i * STEP_US + STEP_US // 2
        if op == "crash":
            crashes.append(CellCrash(time_us=at_us, cell=a))
        elif op == "tear":
            tears.append(
                MigrationTear(time_us=at_us, crash=a, after_ops=b)
            )
    plane = ShardedAlpsPlane(
        tree,
        AlpsConfig(quantum_us=ms(10)),
        cells=CELLS,
        seed=seed,
        resilience=PlaneResilienceConfig(
            policy=RestartPolicy(restart_budget=RESTART_BUDGET),
            seed=seed,
            plan=FaultPlan(
                cell_crashes=tuple(crashes), migration_tears=tuple(tears)
            ),
        ),
    )
    for i, (op, a, b) in enumerate(script):
        if op == "weight":
            try:
                plane.set_weight(subtrees[a % len(subtrees)], b)
            except MigrationTornError:
                pass  # salvaged by the next tick / rolled back already
        plane.run_until((i + 1) * STEP_US)
        orphans, atomic = audit_plane_partition(plane)
        assert not atomic, f"step {i}: {atomic}"
        assert not orphans, f"step {i}: {orphans}"
    # Let any armed-but-unfired state settle, then re-check the end
    # state: full membership on live cells, every pid resumable.
    plane.run_until((len(script) + 2) * STEP_US)
    orphans, atomic = audit_plane_partition(plane)
    assert not atomic and not orphans
    members = plane.members()
    assert set().union(*members.values()) == all_sids
    assert sum(len(s) for s in members.values()) == len(all_sids)
    res = plane.resilience
    kapi = plane.kernel.kapi
    for cell, agent in plane.agents.items():
        if not res.is_dead(cell) and agent.subjects:
            agent.shutdown(kapi)
    assert not any(
        plane.kernel.is_stopped(proc.pid)
        for proc in plane.workers.values()
    )
