"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.kernel.kconfig import KernelConfig
from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine


@pytest.fixture(autouse=True)
def _isolated_sweep_cache(tmp_path, monkeypatch):
    """Point the sweep result cache at a per-test directory so tests
    never read or pollute the user's ``~/.cache/repro-sweep``."""
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "sweep-cache"))


@pytest.fixture
def engine() -> Engine:
    """A fresh deterministic engine."""
    return Engine(seed=42)


@pytest.fixture
def kernel(engine: Engine) -> Kernel:
    """A kernel with default (FreeBSD-4.x-like) configuration."""
    return Kernel(engine)


@pytest.fixture
def fast_kernel_config() -> KernelConfig:
    """A kernel config with no context-switch cost, for exact-arithmetic
    scheduling tests."""
    return KernelConfig(ctx_switch_us=0)
