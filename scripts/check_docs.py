#!/usr/bin/env python
"""Documentation linter: intra-repo links, anchors, and doctests.

Checks, over ``README.md`` and every markdown file under ``docs/``:

* every relative markdown link resolves to a real file or directory
  (external ``http(s)``/``mailto`` links are not fetched);
* every fragment (``file.md#section``) matches a heading anchor in the
  target file, using GitHub's slug rules (lowercase, punctuation
  stripped, spaces → dashes);
* fenced ``>>>`` examples in ``docs/using_the_library.md`` and
  ``docs/share_tree.md`` pass under :mod:`doctest` (run with
  ``PYTHONPATH=src``).

Exit status is non-zero on any failure, so CI can gate on it:

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Files swept for links: the top-level README plus all of docs/.
DOC_FILES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]

#: Markdown files whose ``>>>`` examples must pass under doctest.
DOCTEST_FILES = [
    REPO / "docs" / "using_the_library.md",
    REPO / "docs" / "share_tree.md",
]

# Inline markdown links: [text](target). Images share the syntax.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:")


def _strip_code_blocks(text: str) -> str:
    """Drop fenced code blocks so example links aren't linted."""
    return re.sub(r"```.*?```", "", text, flags=re.S)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading."""
    # Inline code/emphasis markers render to nothing in the anchor.
    heading = re.sub(r"[`*_]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for m in _HEADING_RE.finditer(_strip_code_blocks(path.read_text())):
        slug = github_slug(m.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_links() -> list[str]:
    errors: list[str] = []
    for doc in DOC_FILES:
        text = _strip_code_blocks(doc.read_text())
        for m in _LINK_RE.finditer(text):
            target = m.group(1)
            if target.startswith(_EXTERNAL):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{doc.relative_to(REPO)}: broken link {target!r}"
                    )
                    continue
            else:
                resolved = doc
            if fragment:
                if resolved.is_dir() or resolved.suffix.lower() != ".md":
                    continue  # anchors only checked in markdown
                if fragment not in anchors_of(resolved):
                    errors.append(
                        f"{doc.relative_to(REPO)}: link {target!r} names a "
                        f"missing anchor #{fragment}"
                    )
    return errors


def check_doctests() -> list[str]:
    errors: list[str] = []
    for doc in DOCTEST_FILES:
        failures, attempted = doctest.testfile(
            str(doc), module_relative=False, verbose=False
        )
        if attempted == 0:
            errors.append(f"{doc.relative_to(REPO)}: no doctest examples found")
        elif failures:
            errors.append(
                f"{doc.relative_to(REPO)}: {failures}/{attempted} "
                "doctest examples failed (run `python -m doctest` on it)"
            )
    return errors


def main() -> int:
    missing = [str(p) for p in DOC_FILES + DOCTEST_FILES if not p.exists()]
    if missing:
        print("missing documentation files:", *missing, sep="\n  ")
        return 1
    errors = check_links() + check_doctests()
    for err in errors:
        print(f"ERROR: {err}")
    n_links = sum(
        1 for doc in DOC_FILES
        for _ in _LINK_RE.finditer(_strip_code_blocks(doc.read_text()))
    )
    print(
        f"checked {len(DOC_FILES)} files, {n_links} links, "
        f"{len(DOCTEST_FILES)} doctest files: "
        + ("FAIL" if errors else "ok")
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
