#!/usr/bin/env python
"""ALPS on the real host: control actual Linux processes.

Spawns real compute-bound child processes and runs the same ALPS core
used by the simulator as a live user-level scheduler over them —
/proc/<pid>/stat for progress, SIGSTOP/SIGCONT for eligibility.  No
privileges required.

Run:  python examples/live_alps.py [duration_seconds]   (default 8)

Note: quantitative experiments use the simulator; host runs carry
Python sampling-loop jitter and tick-resolution CPU accounting.
"""

import sys

from repro.hostos import HostAlps, spawn_spinner


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 8.0
    shares = [1, 2, 3]
    print(f"Spawning {len(shares)} spinner processes (shares {shares})...")
    procs = [spawn_spinner() for _ in shares]
    try:
        alps = HostAlps(
            {p.pid: s for p, s in zip(procs, shares)}, quantum_s=0.05
        )
        print(f"Controlling for {duration:.0f}s at a 50 ms quantum...")
        report = alps.run(duration)
        fractions = report.fractions()
        total = sum(shares)
        print("\npid      share  target  achieved")
        for p, s in zip(procs, shares):
            print(
                f"{p.pid:7d}    {s}    {s / total:6.1%}  "
                f"{fractions[p.pid]:8.1%}"
            )
        print(f"\ncycles completed: {report.cycles}")
        print(f"controller overhead: {report.overhead_fraction:.2%} of one CPU")
    finally:
        for p in procs:
            p.kill()
        for p in procs:
            p.wait()


if __name__ == "__main__":
    main()
