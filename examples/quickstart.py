#!/usr/bin/env python
"""Quickstart: proportional-share scheduling of three processes.

Spawns three compute-bound processes with shares 1:2:3 under one ALPS
scheduler (10 ms quantum) in the simulated kernel, runs 30 virtual
seconds, and reports the CPU fractions each process received, the
per-cycle error, and ALPS's own overhead.

Run:  python examples/quickstart.py
"""

from repro import AlpsConfig, build_controlled_workload, ms, sec
from repro.metrics.accuracy import mean_rms_relative_error, per_subject_fractions


def main() -> None:
    shares = [1, 2, 3]
    workload = build_controlled_workload(
        shares, AlpsConfig(quantum_us=ms(10)), seed=0
    )
    workload.engine.run_until(sec(30))

    log = workload.agent.cycle_log
    fractions = per_subject_fractions(log, skip=5)
    total = sum(shares)

    print(f"Completed {len(log)} ALPS cycles over 30 virtual seconds.\n")
    print("process  share  target  achieved")
    for sid, share in enumerate(shares):
        print(
            f"  w{sid}      {share}      {share / total:6.1%}  "
            f"{fractions[sid]:8.1%}"
        )
    err = mean_rms_relative_error(log, skip=5)
    print(f"\nmean per-cycle RMS relative error: {err:.2f}%")
    print(f"ALPS overhead: {workload.overhead_fraction():.2%} of CPU")


if __name__ == "__main__":
    main()
