#!/usr/bin/env python
"""Section 4.1 scenario: several independent applications, each with
its own ALPS, on one machine.

Three applications arrive over time (A at t=0, B at t=3s, C at t=6s),
each running three processes under its own ALPS.  Each ALPS apportions
whatever CPU the kernel gives its group — it neither knows nor cares
about the other groups.  The example prints per-group in-group CPU
fractions per phase (the paper's Table 3).

Run:  python examples/multi_tenant.py
"""

from repro.analysis.tables import format_table
from repro.experiments.multi import run_multi_alps_experiment


def main() -> None:
    print("Running 3 phased groups (A{7,8,9} t=0, B{4,5,6} t=3s, C{1,2,3} t=6s)...")
    result = run_multi_alps_experiment(seed=0)

    headers = [
        "share", "group", "target%",
        "ph1 %cpu", "ph1 %re",
        "ph2 %cpu", "ph2 %re",
        "ph3 %cpu", "ph3 %re",
    ]
    rows = []
    for row in result.table3():
        rows.append(
            [
                row["share"],
                row["group"],
                row["target_pct"],
                row["phase1_pct"], row["phase1_relerr"],
                row["phase2_pct"], row["phase2_relerr"],
                row["phase3_pct"], row["phase3_relerr"],
            ]
        )
    print()
    print(format_table(headers, rows, title="Table 3 (reproduced)"))
    errs = [
        row[f"phase{p}_relerr"]
        for row in result.table3()
        for p in (1, 2, 3)
        if row[f"phase{p}_relerr"] is not None
    ]
    print(f"\naverage relative error: {sum(errs) / len(errs):.2f}%  "
          "(paper: 0.93%)")


if __name__ == "__main__":
    main()
