#!/usr/bin/env python
"""Scientific-computing scenario: CPU shares follow mesh refinement.

The paper's introduction motivates ALPS with "a scientific application
that generates multiple processes, each of which computes over some
space ... CPU time ... should be allocated proportionally to the size
of that space, e.g., based on adaptive mesh refinement."

This example simulates four solver processes, each owning a region of
a mesh.  Midway through the run, one region is refined (its cell count
quadruples), the application tears down its ALPS and starts a new one
with shares matching the new cell counts — CPU allocation follows the
refinement without touching the kernel or the solver processes.

Run:  python examples/adaptive_mesh.py
"""

from repro import AlpsConfig, Kernel, Engine, ms, sec
from repro.alps.agent import spawn_alps
from repro.alps.subjects import ProcessSubject
from repro.kernel.signals import SIGCONT, SIGKILL
from repro.workloads.shares import normalize_shares
from repro.workloads.spinner import spinner_behavior


def report(kernel, workers, cells, t0, t1, title):
    print(f"\n{title}  (window {t0 / 1e6:.0f}-{t1 / 1e6:.0f}s)")
    usages = [kernel.getrusage(w.pid) for w in workers]
    window = [u - b for u, b in zip(usages, report.baseline)]
    report.baseline = usages
    total = sum(window)
    total_cells = sum(cells)
    print("region  cells  target  achieved")
    for i, (w, c) in enumerate(zip(workers, cells)):
        print(
            f"  R{i}    {c:5d}  {c / total_cells:6.1%}  "
            f"{window[i] / total:8.1%}"
        )


def main() -> None:
    engine = Engine(seed=0)
    kernel = Kernel(engine)

    # Four regions with initial cell counts; shares track cells.
    cells = [100, 200, 300, 400]
    workers = [
        kernel.spawn(f"region{i}", spinner_behavior()) for i in range(4)
    ]
    report.baseline = [0, 0, 0, 0]

    def make_subjects(counts):
        # Scale raw cell counts by their GCD (paper §2.1) so the ALPS
        # cycle — the fairness horizon — stays short.
        shares = normalize_shares(counts)
        return [
            ProcessSubject(sid=i, share=s, pid=workers[i].pid)
            for i, s in enumerate(shares)
        ]

    cfg = AlpsConfig(quantum_us=ms(10))
    alps_proc, _agent = spawn_alps(kernel, make_subjects(cells), cfg)
    engine.run_until(sec(20))
    report(kernel, workers, cells, 0, sec(20), "Before refinement")

    # Region 0 is refined: 4x the cells. Replace the ALPS (the paper's
    # model: one ALPS per application configuration; the application
    # owns the policy).
    kernel.kill(alps_proc.pid, SIGKILL)
    for w in workers:  # make sure nobody is left suspended
        if w.stopped:
            kernel.kill(w.pid, SIGCONT)
    cells = [400, 200, 300, 400]
    alps_proc, _agent = spawn_alps(
        kernel, make_subjects(cells), cfg, name="alps-refined"
    )
    engine.run_until(sec(40))
    report(kernel, workers, cells, sec(20), sec(40), "After refinement")


if __name__ == "__main__":
    main()
