#!/usr/bin/env python
"""Section 5 scenario: a shared web server with per-user CPU shares.

Three bulletin-board sites (one per user) run on one simulated web
server; each is driven by closed-loop clients.  First the kernel
scheduler divides the CPU on its own (roughly evenly); then one ALPS
schedules the three *users* as resource principals with shares 1:2:3
(100 ms quantum, 1 s membership refresh) and throughput follows.

Run:  python examples/shared_webserver.py        (~1 minute)
"""

from repro.experiments.webserver import run_webserver_experiment


def main() -> None:
    print("Simulating 3 prefork sites x 50 workers, 325 clients each...")
    result = run_webserver_experiment(warmup_s=15.0, measure_s=45.0, seed=0)

    print("\nThroughput (requests/second):")
    print("site   user-share   kernel-only   with-ALPS")
    for i, share in enumerate(result.shares):
        print(
            f"  {i + 1}        {share}          "
            f"{result.baseline_rps[i]:6.1f}      {result.alps_rps[i]:6.1f}"
        )
    base_total = sum(result.baseline_rps)
    alps_total = sum(result.alps_rps)
    print(f"\ntotals: {base_total:.1f} -> {alps_total:.1f} req/s")
    print(
        "ALPS throughput fractions:",
        "  ".join(f"{f:.1%}" for f in result.alps_fractions),
        "(target 16.7% / 33.3% / 50.0%)",
    )
    print(f"ALPS overhead: {result.alps_overhead_pct:.2f}% of CPU")
    print(f"database utilisation: {result.db_utilization:.0%} (not the bottleneck)")
    print(
        "\nPaper measured {29, 30, 40} -> {18, 35, 53} req/s on its "
        "FreeBSD testbed — the same even-to-1:2:3 reapportionment."
    )


if __name__ == "__main__":
    main()
