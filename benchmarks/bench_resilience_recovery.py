"""Resilience — journaled crash recovery vs the lossy re-baseline.

An agent crash mid-run loses volatile state; what recovery preserves
decides how much fairness the crash costs.  This benchmark runs the
same seeded workload three ways — fault-free, crash with journaled
recovery, crash with the PR 1 lossy re-baseline — and compares the
*cumulative* per-process attained-CPU fractions of the two recovery
paths against the fault-free run.

Reproduction claims: the journaled path lands within
``REPRO_RESILIENCE_MAX_ERROR`` (fraction, default 0.005) of the
fault-free split on every seed, and is strictly better than the lossy
path (which forgives the downtime debt and permanently shifts the
split).
"""

import os

from benchmarks.conftest import emit
from repro.alps.config import AlpsConfig
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.experiments.common import run_for_cycles
from repro.faults.plan import AgentCrash, FaultPlan
from repro.resilience.journal import MemoryJournal
from repro.units import ms
from repro.workloads.scenarios import build_controlled_workload

SHARES = (1, 2, 3, 4)
QUANTUM_US = ms(10)
CYCLES = 60
SEEDS = (0, 1, 2)

#: Max allowed deviation (absolute attained fraction) of the journaled
#: path from the fault-free run.
MAX_ERROR = float(os.environ.get("REPRO_RESILIENCE_MAX_ERROR", "0.005"))


def _attained_fractions(cw) -> list[float]:
    kapi = cw.kernel.kapi
    usages = [kapi.getrusage(p.pid) for p in cw.workers]
    total = sum(usages)
    return [u / total for u in usages]


def _run(seed: int, *, crash: bool, journaled: bool) -> list[float]:
    horizon_us = int(2 * (CYCLES + 5) * sum(SHARES) * QUANTUM_US)
    plan = None
    if crash:
        plan = FaultPlan(
            seed=seed,
            horizon_us=horizon_us,
            agent_crashes=(AgentCrash(time_us=horizon_us // 3),),
        )
    journal = MemoryJournal() if journaled else None
    cw = build_controlled_workload(
        list(SHARES),
        AlpsConfig(quantum_us=QUANTUM_US),
        seed=seed,
        fault_plan=plan,
        journal=journal,
    )
    run_for_cycles(cw, CYCLES, max_sim_us=horizon_us, on_incomplete="ignore")
    cw.agent.shutdown(cw.kernel.kapi)
    if journaled:
        assert cw.agent.journal_recoveries == 1
        assert cw.agent.recovery_fallbacks == 0
    return _attained_fractions(cw)


def _max_deviation(a: list[float], b: list[float]) -> float:
    return max(abs(x - y) for x, y in zip(a, b))


def _sweep():
    rows = []
    for seed in SEEDS:
        reference = _run(seed, crash=False, journaled=False)
        journaled = _run(seed, crash=True, journaled=True)
        lossy = _run(seed, crash=True, journaled=False)
        rows.append(
            {
                "seed": seed,
                "journaled_dev": _max_deviation(journaled, reference),
                "lossy_dev": _max_deviation(lossy, reference),
            }
        )
    return rows


def test_journaled_recovery_beats_rebaseline(benchmark, results_dir):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    emit(
        "RESILIENCE — crash-recovery fidelity "
        "(max attained-fraction deviation vs fault-free)",
        format_table(
            ["seed", "journaled", "re-baseline", "improvement"],
            [
                [
                    r["seed"],
                    f"{r['journaled_dev']:.6f}",
                    f"{r['lossy_dev']:.6f}",
                    f"{r['lossy_dev'] / max(r['journaled_dev'], 1e-12):.0f}x",
                ]
                for r in rows
            ],
        ),
    )
    write_csv(results_dir / "resilience_recovery.csv", rows)

    for r in rows:
        # 1. Journaled recovery restores the fault-free split within the
        #    configured bound.
        assert r["journaled_dev"] <= MAX_ERROR, (
            f"seed {r['seed']}: journaled deviation {r['journaled_dev']:.6f} "
            f"exceeds REPRO_RESILIENCE_MAX_ERROR={MAX_ERROR}"
        )
        # 2. And strictly beats the PR 1 lossy re-baseline path.
        assert r["journaled_dev"] < r["lossy_dev"], (
            f"seed {r['seed']}: journaled {r['journaled_dev']:.6f} not "
            f"better than re-baseline {r['lossy_dev']:.6f}"
        )
