"""Extension — ALPS under bursty (non-CPU-bound) demand.

The paper evaluates compute-bound processes plus one deterministic I/O
pattern.  This extension mixes a greedy process with two bursty ones
(Markov on/off demand) under shares 3:2:1 and checks the two
properties a proportional-share scheduler should compose:

* **caps bind only under contention**: the greedy process gets *at
  least* its share; bursty processes get at most min(demand, share,
  plus redistributed slack);
* **work conservation**: slack released by idle bursty processes flows
  to whoever can use it, keeping the machine ~fully busy.
"""

import pytest

from benchmarks.conftest import emit
from repro.alps.config import AlpsConfig
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.units import ms, sec
from repro.workloads.bursty import bursty_behavior
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.spinner import spinner_behavior


def _run(duty_pct: int, seed: int = 0):
    """Greedy proc (share 3) + two bursty procs (shares 2 and 1) whose
    unconstrained demand is ``duty_pct`` % of one CPU each."""
    from repro.sim.rng import RngStreams

    streams = RngStreams(seed)
    mean_burst = ms(40)
    mean_idle = int(mean_burst * (100 - duty_pct) / max(duty_pct, 1))
    behaviors = [
        spinner_behavior(),
        bursty_behavior(
            streams.stream("b1"), mean_burst_us=mean_burst, mean_idle_us=mean_idle
        ),
        bursty_behavior(
            streams.stream("b2"), mean_burst_us=mean_burst, mean_idle_us=mean_idle
        ),
    ]
    cw = build_controlled_workload(
        [3, 2, 1],
        AlpsConfig(quantum_us=ms(10)),
        seed=seed,
        behaviors=behaviors,
    )
    horizon = sec(60)
    cw.engine.run_until(horizon)
    usages = [cw.kernel.getrusage(w.pid) for w in cw.workers]
    util = cw.kernel.total_busy_us / cw.kernel.now
    return [u / horizon for u in usages], util


def test_bursty_extension(benchmark, results_dir):
    duties = (100, 60, 30)

    def sweep():
        return {duty: _run(duty) for duty in duties}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for duty in duties:
        fracs, util = results[duty]
        rows.append(
            [f"{duty}%", *(f"{f:.1%}" for f in fracs), f"{util:.1%}"]
        )
    emit(
        "EXTENSION — bursty demand under shares 3:2:1 "
        "(greedy / bursty / bursty)",
        format_table(
            ["bursty demand", "greedy (3)", "bursty (2)", "bursty (1)",
             "utilisation"],
            rows,
        )
        + "\n\ntargets when all greedy: 50/33/17 %; as bursty demand "
        "falls their usage tracks demand and the greedy process absorbs "
        "the slack (work conservation).",
    )
    write_csv(
        results_dir / "extension_bursty.csv",
        [
            {
                "bursty_duty_pct": duty,
                "greedy_frac": results[duty][0][0],
                "bursty2_frac": results[duty][0][1],
                "bursty1_frac": results[duty][0][2],
                "utilization": results[duty][1],
            }
            for duty in duties
        ],
    )

    full, _ = results[100]
    assert full[0] == pytest.approx(0.50, abs=0.04)  # 3:2:1 when saturated
    assert full[1] == pytest.approx(0.33, abs=0.04)
    low, util_low = results[30]
    # Bursty procs capped by their own demand (~30 %), greedy absorbs
    # the slack; machine stays busy.
    assert low[1] <= 0.36
    assert low[0] >= 0.48
    assert util_low > 0.9
