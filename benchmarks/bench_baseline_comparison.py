"""Extension — ALPS vs in-kernel proportional share vs cpulimit.

Places ALPS between its bounds:

* **stride** (in-kernel, deterministic) — what kernel support buys:
  zero per-cycle error by construction.
* **lottery** (in-kernel, randomized) — proportional in expectation,
  visibly noisier per cycle.
* **duty-cycle limiter** (user-level, cpulimit-style caps) — similar
  mechanism to ALPS but not work-conserving; when a process exits or
  blocks its slice idles instead of being re-apportioned.

All user-level contenders run inside the same simulated kernel with
the same cost model.
"""

import pytest

from benchmarks.conftest import emit
from repro.alps.config import AlpsConfig
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.baselines.duty_cycle import spawn_duty_cycle
from repro.baselines.lottery import LotteryScheduler
from repro.baselines.stride import StrideScheduler
from repro.experiments.common import run_for_cycles
from repro.kernel.kernel import Kernel
from repro.metrics.accuracy import mean_rms_relative_error
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.shares import ShareDistribution, workload_shares
from repro.workloads.spinner import spinner_behavior

Q_US = ms(10)
CYCLES = 60


def _alps_error(shares):
    cw = build_controlled_workload(list(shares), AlpsConfig(quantum_us=Q_US), seed=0)
    run_for_cycles(cw, CYCLES + 5)
    return mean_rms_relative_error(cw.agent.cycle_log, skip=5)


def _stride_error(shares):
    sched = StrideScheduler({i: s for i, s in enumerate(shares)}, Q_US)
    return mean_rms_relative_error(sched.cycle_log(CYCLES))


def _lottery_error(shares):
    sched = LotteryScheduler({i: s for i, s in enumerate(shares)}, Q_US, seed=0)
    return mean_rms_relative_error(sched.cycle_log(CYCLES))


def _duty_cycle_utilisation_gap():
    """Duty-cycle caps leave CPU idle when a process exits; ALPS
    re-apportions.  Returns (alps_util, duty_util) with one of two
    processes killed halfway."""
    from repro.kernel.signals import SIGKILL

    def run(kind):
        eng = Engine(seed=0)
        k = Kernel(eng)
        a = k.spawn("a", spinner_behavior())
        b = k.spawn("b", spinner_behavior())
        if kind == "alps":
            from repro.alps.agent import spawn_alps
            from repro.alps.subjects import ProcessSubject

            subjects = [
                ProcessSubject(sid=0, share=1, pid=a.pid),
                ProcessSubject(sid=1, share=1, pid=b.pid),
            ]
            spawn_alps(k, subjects, AlpsConfig(quantum_us=Q_US))
        else:
            spawn_duty_cycle(k, [1, 1], [a.pid, b.pid])
        eng.at(sec(10), lambda e: k.kill(a.pid, SIGKILL))
        eng.run_until(sec(20))
        # Utilisation of the second half (after the death).
        return k.getrusage(b.pid) / sec(20)

    return run("alps"), run("duty")


def test_baseline_accuracy_comparison(benchmark, results_dir):
    workloads = [
        ("linear5", workload_shares(ShareDistribution.LINEAR, 5)),
        ("equal5", workload_shares(ShareDistribution.EQUAL, 5)),
        ("skewed5", workload_shares(ShareDistribution.SKEWED, 5)),
    ]

    def sweep():
        out = []
        for name, shares in workloads:
            out.append(
                (
                    name,
                    _alps_error(shares),
                    _stride_error(shares),
                    _lottery_error(shares),
                )
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [name, round(alps, 2), round(stride, 2), round(lottery, 2)]
        for name, alps, stride, lottery in results
    ]
    alps_util, duty_util = _duty_cycle_utilisation_gap()
    emit(
        "BASELINES — per-cycle RMS error (%) and work conservation",
        format_table(
            ["workload", "ALPS (user)", "stride (kernel)", "lottery (kernel)"],
            rows,
        )
        + "\n\nwork conservation after one of two processes exits:"
        + f"\n  survivor's CPU share — ALPS: {alps_util:.1%}"
        + f"   duty-cycle limiter: {duty_util:.1%} (capped, not work-conserving)",
    )
    write_csv(
        results_dir / "baseline_comparison.csv",
        [
            {
                "workload": name,
                "alps_err_pct": alps,
                "stride_err_pct": stride,
                "lottery_err_pct": lottery,
            }
            for name, alps, stride, lottery in results
        ],
    )

    for name, alps, stride, lottery in results:
        assert stride <= 0.01  # in-kernel deterministic: exact
        assert alps < lottery + 5.0  # user-level ALPS ~ competitive
    # ALPS is work-conserving, the duty-cycle limiter is not.
    assert alps_util > 0.70
    assert duty_util < 0.62
