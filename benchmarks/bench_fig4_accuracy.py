"""Figure 4 — Accuracy: mean RMS relative error vs quantum length.

Regenerates the figure's nine series (Table 2 workloads) over quantum
lengths.  Reproduction targets: most workloads under 5 % error; skewed
highest and rising with the quantum; equal/linear flat and low.

The sweep is scaled for benchmark runtime (fewer cycles/seeds than the
paper's 200×3; pass the full protocol via repro.experiments.accuracy
for a paper-exact run).
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.ascii_plot import ascii_series_plot
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.experiments.accuracy import run_accuracy_point
from repro.workloads.shares import DISTRIBUTIONS, ShareDistribution

QUANTA_MS = (10, 20, 30, 40)
SIZES = (5, 10, 20)
CYCLES = {5: 120, 10: 70, 20: 40}


def _sweep():
    points = []
    for model in DISTRIBUTIONS:
        for n in SIZES:
            for q in QUANTA_MS:
                points.append(
                    run_accuracy_point(
                        model, n, q, cycles=CYCLES[n], seeds=(0,)
                    )
                )
    return points


def test_figure4_accuracy_sweep(benchmark, results_dir):
    points = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    # Table 2 header (the workloads themselves).
    from repro.workloads.shares import workload_shares

    t2rows = []
    for model in DISTRIBUTIONS:
        row = [model.value]
        for n in SIZES:
            shares = workload_shares(model, n)
            row.append(
                str(shares) if n == 5 else f"total={sum(shares)}"
            )
        t2rows.append(row)
    emit(
        "TABLE 2 — Workload share distributions",
        format_table(["model", "5 procs", "10 procs", "20 procs"], t2rows),
    )

    by_label: dict[str, tuple[list[float], list[float]]] = {}
    rows = []
    for p in points:
        xs, ys = by_label.setdefault(p.label, ([], []))
        xs.append(p.quantum_ms)
        ys.append(p.mean_rms_error_pct)
        rows.append(
            [p.label, p.quantum_ms, round(p.mean_rms_error_pct, 2), p.cycles]
        )
    emit(
        "FIGURE 4 — Mean RMS relative error (%) vs quantum length (ms)",
        format_table(["workload", "Q (ms)", "error %", "cycles"], rows)
        + "\n\n"
        + ascii_series_plot(
            by_label, title="error % vs quantum (ms)", xlabel="Q ms", ylabel="err %"
        ),
    )
    write_csv(
        results_dir / "fig4_accuracy.csv",
        [
            {
                "workload": p.label,
                "quantum_ms": p.quantum_ms,
                "mean_rms_error_pct": p.mean_rms_error_pct,
                "cycles": p.cycles,
            }
            for p in points
        ],
    )

    # Shape assertions (the reproduction claims).
    err = {
        (p.model, p.n, p.quantum_ms): p.mean_rms_error_pct for p in points
    }
    # Most workloads < 5 %: all equal/linear cells.
    low_cells = [
        v
        for (m, n, q), v in err.items()
        if m in (ShareDistribution.EQUAL, ShareDistribution.LINEAR)
    ]
    assert sum(v < 6.0 for v in low_cells) >= 0.8 * len(low_cells)
    # Skewed is the worst family at the largest quantum.
    for n in SIZES:
        assert err[(ShareDistribution.SKEWED, n, 40)] >= max(
            err[(ShareDistribution.EQUAL, n, 40)],
            err[(ShareDistribution.LINEAR, n, 40)],
        )
    # Skewed error falls as the quantum shrinks (paper's §3.1 claim).
    assert err[(ShareDistribution.SKEWED, 20, 10)] < err[
        (ShareDistribution.SKEWED, 20, 40)
    ]
