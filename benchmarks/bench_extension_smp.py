"""Extension — ALPS beyond the paper: multiprocessor scheduling.

The paper's testbed is a uniprocessor; its related work cites surplus
fair scheduling (Chandra et al.) as the SMP generalisation of
proportional share.  Running the unmodified ALPS algorithm on a
simulated 2-CPU kernel shows both sides of that story:

* proportions of the *aggregate* capacity still hold (the eligible-set
  mechanism is CPU-count agnostic), but
* utilisation drops whenever fewer eligible processes remain than CPUs
  near the end of a cycle — the exact pathology SFS fixes in-kernel.
"""

import pytest

from benchmarks.conftest import emit
from repro.alps.config import AlpsConfig
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.experiments.common import run_for_cycles
from repro.kernel.kconfig import KernelConfig
from repro.metrics.accuracy import mean_rms_relative_error, per_subject_fractions
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload


def _run(shares, ncpus, *, horizon_s=40):
    cw = build_controlled_workload(
        list(shares),
        AlpsConfig(quantum_us=ms(10)),
        seed=0,
        kernel_config=KernelConfig(ncpus=ncpus),
    )
    cw.engine.run_until(sec(horizon_s))
    fractions = per_subject_fractions(cw.agent.cycle_log, skip=5)
    err = mean_rms_relative_error(cw.agent.cycle_log, skip=5)
    util = cw.kernel.total_busy_us / (ncpus * cw.kernel.now)
    return fractions, err, util


def test_smp_extension(benchmark, results_dir):
    shares = (1, 2, 3, 4)

    def sweep():
        return {ncpus: _run(shares, ncpus) for ncpus in (1, 2)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for ncpus, (fractions, err, util) in sorted(results.items()):
        rows.append(
            [
                ncpus,
                "  ".join(f"{fractions[i]:.1%}" for i in range(len(shares))),
                round(err, 2),
                f"{util:.1%}",
            ]
        )
    emit(
        "EXTENSION — ALPS on SMP (shares 1:2:3:4, targets 10/20/30/40 %)",
        format_table(
            ["CPUs", "achieved fractions", "RMS err %", "machine utilisation"],
            rows,
        )
        + "\n\nproportions survive on SMP; utilisation does not — the gap "
        "surplus fair scheduling closes in-kernel.",
    )
    write_csv(
        results_dir / "extension_smp.csv",
        [
            {
                "ncpus": ncpus,
                "err_pct": err,
                "utilization": util,
                **{f"frac_{i}": fractions[i] for i in range(len(shares))},
            }
            for ncpus, (fractions, err, util) in sorted(results.items())
        ],
    )

    up_frac, up_err, up_util = results[1]
    smp_frac, smp_err, smp_util = results[2]
    for i, share in enumerate(shares):
        assert smp_frac[i] == pytest.approx(share / 10, abs=0.02)
    assert up_util > 0.98
    assert smp_util < 0.95  # the SMP utilisation gap is real
