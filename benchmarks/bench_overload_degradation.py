"""Overload — bounded degradation past the scalability knee.

Section 4.2's breakdown is a cliff: past the knee the agent starves in
multi-second outages and accuracy error climbs past 60 %.  The
graceful-degradation ladder (docs/overload.md) trades enforcement
granularity for stability — stretch, coarsen, shed — and should turn
the cliff into a plateau.

This benchmark runs the past-the-knee experiment at twice the observed
knee (n = 80 at Q = 10 ms) with the ladder on and off and gates both
halves of the claim:

* the protected run's error stays under ``REPRO_OVERLOAD_MAX_ERROR``
  (percent, default 45);
* the ladder-disabled control reproduces the cliff — error above
  ``REPRO_OVERLOAD_MIN_CLIFF`` (percent, default 55) — so the gate
  cannot pass by accidentally running a sustainable workload.
"""

import os

from benchmarks.conftest import emit
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.experiments.overload import PAST_KNEE_N, run_overload_comparison

SEEDS = (0, 1, 2)

#: Max mean RMS accuracy error (%) allowed with the ladder engaged.
MAX_ERROR = float(os.environ.get("REPRO_OVERLOAD_MAX_ERROR", "45.0"))
#: Min error (%) the unprotected control must show (the cliff exists).
MIN_CLIFF = float(os.environ.get("REPRO_OVERLOAD_MIN_CLIFF", "55.0"))


def _sweep():
    rows = []
    for seed in SEEDS:
        cmp = run_overload_comparison(seed=seed)
        rows.append(
            {
                "seed": seed,
                "n": PAST_KNEE_N,
                "protected_err_pct": cmp.protected.mean_rms_error_pct,
                "control_err_pct": cmp.control.mean_rms_error_pct,
                "error_ratio": cmp.error_ratio,
                "engagements": cmp.protected.engagements,
                "sheds": cmp.protected.sheds,
                "max_degraded_slip_quanta": (
                    cmp.protected.max_degraded_slip_quanta
                ),
            }
        )
    return rows


def test_ladder_bounds_past_knee_error(benchmark, results_dir):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    emit(
        f"OVERLOAD — accuracy at 2x the knee (n={PAST_KNEE_N}), "
        "ladder vs control",
        format_table(
            ["seed", "protected", "control", "ratio", "sheds"],
            [
                [
                    r["seed"],
                    f"{r['protected_err_pct']:.1f}%",
                    f"{r['control_err_pct']:.1f}%",
                    f"{r['error_ratio']:.2f}",
                    r["sheds"],
                ]
                for r in rows
            ],
        ),
    )
    write_csv(results_dir / "overload_degradation.csv", rows)

    for r in rows:
        # 1. The ladder bounds the error past the knee.
        assert r["protected_err_pct"] <= MAX_ERROR, (
            f"seed {r['seed']}: protected error "
            f"{r['protected_err_pct']:.1f}% exceeds "
            f"REPRO_OVERLOAD_MAX_ERROR={MAX_ERROR}"
        )
        # 2. The control reproduces the seed's cliff.
        assert r["control_err_pct"] >= MIN_CLIFF, (
            f"seed {r['seed']}: control error {r['control_err_pct']:.1f}% "
            f"below REPRO_OVERLOAD_MIN_CLIFF={MIN_CLIFF} — "
            "the workload is not past the knee"
        )
        # 3. The ladder actually engaged (the bound is not vacuous).
        assert r["engagements"] >= 1 and r["sheds"] >= 1, (
            f"seed {r['seed']}: ladder never engaged/shed "
            f"(engagements={r['engagements']}, sheds={r['sheds']})"
        )
