"""Sweep cache — cold vs warm wall-clock on a small Figure 4 matrix.

Runs the same benchmark-sized Figure 4 sub-matrix twice through the
content-addressed sweep cache: the cold pass computes and stores every
cell, the warm pass must be served entirely from the cache.  The
measured speedup is the claim behind incremental ``repro report``
runs; the gate (default ≥ 5×, override with ``REPRO_SWEEP_MIN_SPEEDUP``)
fails the benchmark if cache lookups ever become comparable to the
simulations they replace.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import emit
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.experiments.accuracy import accuracy_cell, run_accuracy_cell
from repro.sweep import SweepCache, SweepSpec, run_sweep
from repro.workloads.shares import DISTRIBUTIONS

QUANTA_MS = (10, 40)
SIZES = (5, 10)
CYCLES = {5: 60, 10: 40}


def _spec() -> SweepSpec:
    return SweepSpec(
        worker=run_accuracy_cell,
        cells=[
            accuracy_cell(model, n, q, cycles=CYCLES[n], seeds=(0,))
            for model in DISTRIBUTIONS
            for n in SIZES
            for q in QUANTA_MS
        ],
    )


def test_sweep_cache_cold_vs_warm(benchmark, results_dir, tmp_path):
    root = tmp_path / "sweep-cache"

    t0 = time.perf_counter()
    cold = run_sweep(_spec(), workers=1, cache=SweepCache(root))
    cold_s = time.perf_counter() - t0
    assert cold.stats.misses == len(cold.results)

    def _warm():
        return run_sweep(_spec(), workers=1, cache=SweepCache(root))

    warm = benchmark.pedantic(_warm, rounds=3, iterations=1)
    t0 = time.perf_counter()
    _warm()
    warm_s = time.perf_counter() - t0
    assert warm.stats.hits == len(warm.results)
    assert warm.stats.misses == 0
    assert warm.values == cold.values

    speedup = cold_s / max(warm_s, 1e-9)
    rows = [
        ["cold (compute + store)", f"{cold_s:.3f}", cold.stats.misses, 0],
        ["warm (all cache hits)", f"{warm_s:.3f}", 0, warm.stats.hits],
        ["speedup", f"{speedup:.1f}x", "", ""],
    ]
    emit(
        "SWEEP CACHE — cold vs warm Figure 4 sub-matrix "
        f"({len(cold.results)} cells)",
        format_table(["pass", "seconds", "misses", "hits"], rows),
    )
    write_csv(
        results_dir / "sweep_cache.csv",
        [
            {
                "cells": len(cold.results),
                "cold_s": cold_s,
                "warm_s": warm_s,
                "speedup": speedup,
            }
        ],
    )

    min_speedup = float(os.environ.get("REPRO_SWEEP_MIN_SPEEDUP", "5"))
    assert speedup >= min_speedup, (
        f"warm sweep only {speedup:.1f}x faster than cold "
        f"(gate: {min_speedup}x; cold {cold_s:.3f}s, warm {warm_s:.3f}s)"
    )
