"""Figure 6 — I/O: proportional redistribution when a process blocks.

Three processes with shares 1:2:3 at a 10 ms quantum; the 2-share
process alternates 80 ms of CPU with 240 ms of sleep after a warm-up.
Reproduction targets: steady state ≈ 16.7/33.3/50 %; while the 2-share
process is blocked the others split ≈ 25/75 %.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.ascii_plot import ascii_series_plot
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.experiments.io import run_io_experiment


def test_figure6_io_redistribution(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_io_experiment(total_cycles=900, warmup_cpu_s=8.0, seed=0),
        rounds=1,
        iterations=1,
    )

    steady = result.mean_shares(result.steady_mask)
    active = result.mean_shares(result.active_mask)
    blocked = result.mean_shares(result.blocked_mask)
    rows = [
        ["steady state (pre-I/O)", *(round(v, 1) for v in steady), "16.7/33.3/50.0"],
        ["I/O phase, B active", *(round(v, 1) for v in active), "16.7/33.3/50.0"],
        ["I/O phase, B blocked", *(round(v, 1) for v in blocked), "25.0/0.0/75.0"],
    ]
    # Timeline excerpt around the I/O onset (the figure's x-window).
    onset = result.io_start_cycle
    window = (result.cycle_indices >= onset - 30) & (
        result.cycle_indices <= onset + 50
    )
    series = {
        "1 share": (
            result.cycle_indices[window],
            result.share_pct[window, 0],
        ),
        "2 shares (I/O)": (
            result.cycle_indices[window],
            result.share_pct[window, 1],
        ),
        "3 shares": (
            result.cycle_indices[window],
            result.share_pct[window, 2],
        ),
    }
    emit(
        "FIGURE 6 — Share (%) per cycle around the I/O onset "
        f"(cycle {onset})",
        format_table(
            ["phase", "A (1 share)", "B (2 shares)", "C (3 shares)", "paper"],
            rows,
        )
        + "\n\n"
        + ascii_series_plot(
            series, title="share % vs cycle", xlabel="cycle", ylabel="share %"
        ),
    )
    write_csv(
        results_dir / "fig6_io.csv",
        [
            {
                "cycle": int(result.cycle_indices[i]),
                "share_pct_A": result.share_pct[i, 0],
                "share_pct_B": result.share_pct[i, 1],
                "share_pct_C": result.share_pct[i, 2],
                "B_blocked": bool(result.blocked_b[i]),
            }
            for i in range(len(result.cycle_indices))
        ],
    )

    assert steady[0] == pytest.approx(100 / 6, abs=2.0)
    assert steady[1] == pytest.approx(200 / 6, abs=2.0)
    assert steady[2] == pytest.approx(300 / 6, abs=2.0)
    assert blocked[0] == pytest.approx(25.0, abs=4.0)
    assert blocked[2] == pytest.approx(75.0, abs=6.0)
    assert blocked[1] < 12.0
