"""Shared harness for the substrate throughput cells.

Each *cell* is a fixed, deterministic simulation workload whose
events/second throughput tracks the health of the simulation substrate
(engine + kernel + agent hot paths).  The same cell definitions are
used by:

* ``bench_substrate_micro.py`` — pytest checks comparing current
  throughput against the committed baseline CSV;
* ``refresh_substrate_baseline.py`` — regenerates the baseline CSV
  (see docs/performance.md for when that is legitimate).

Cell workloads must never change without refreshing the baseline: the
event *count* of a cell is asserted exactly, so a schedule-visible
change shows up as a count mismatch rather than a misleading ratio.
"""

from __future__ import annotations

import csv
import time
from dataclasses import dataclass
from typing import Callable

from repro.alps.config import AlpsConfig
from repro.kernel.kconfig import KernelConfig
from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.spinner import spinner_behavior


@dataclass(frozen=True)
class CellResult:
    name: str
    events: int
    best_wall_s: float

    @property
    def events_per_sec(self) -> float:
        return self.events / self.best_wall_s


def _engine_chain() -> int:
    eng = Engine(seed=0)

    def chain(event):
        if eng.now < 1_000_000:
            eng.after(10, chain)

    eng.at(0, chain)
    eng.run_until(2_000_000)
    return eng.events_processed


def _kernel_spinners_8() -> int:
    eng = Engine(seed=0)
    k = Kernel(eng, KernelConfig())
    for i in range(8):
        k.spawn(f"p{i}", spinner_behavior())
    eng.run_until(sec(100))
    return eng.events_processed


def _alps_cell(n: int) -> Callable[[], int]:
    def run() -> int:
        cw = build_controlled_workload(
            [5] * n, AlpsConfig(quantum_us=ms(10)), seed=0
        )
        cw.engine.run_until(sec(10))
        return cw.engine.events_processed

    return run


#: name -> zero-arg callable returning the number of events processed.
CELLS: dict[str, Callable[[], int]] = {
    "engine_chain": _engine_chain,
    "kernel_spinners_8": _kernel_spinners_8,
    "alps_cell_5": _alps_cell(5),
    "alps_cell_10": _alps_cell(10),
    "alps_cell_20": _alps_cell(20),
    "alps_cell_40": _alps_cell(40),
}

#: The cells forming the Fig. 8/9-style scalability sweep (wall-clock
#: series over process count).
SWEEP_CELLS = ("alps_cell_5", "alps_cell_10", "alps_cell_20", "alps_cell_40")


def run_cell(name: str, *, repeats: int = 3) -> CellResult:
    """Run one cell ``repeats`` times; keep the best wall time."""
    fn = CELLS[name]
    fn()  # warm-up (imports, allocator, caches)
    events = 0
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        events = fn()
        wall = time.perf_counter() - t0
        if wall < best:
            best = wall
    return CellResult(name=name, events=events, best_wall_s=best)


def run_all(*, repeats: int = 3) -> list[CellResult]:
    return [run_cell(name, repeats=repeats) for name in CELLS]


def load_baseline(path) -> dict[str, dict[str, float]]:
    """Parse the committed baseline CSV into {cell: row} (see
    ``refresh_substrate_baseline.py`` for the writer)."""
    out: dict[str, dict[str, float]] = {}
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            out[row["cell"]] = {
                "events": int(row["events"]),
                "events_per_sec": float(row["events_per_sec"]),
                "best_wall_s": float(row["best_wall_s"]),
            }
    return out
