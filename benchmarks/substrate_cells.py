"""Shared harness for the substrate throughput cells.

Each *cell* is a fixed, deterministic simulation workload whose
events/second throughput tracks the health of the simulation substrate
(engine + kernel + agent hot paths).  The same cell definitions are
used by:

* ``bench_substrate_micro.py`` — pytest checks comparing current
  throughput against the committed baseline CSV;
* ``refresh_substrate_baseline.py`` — regenerates the baseline CSV
  (see docs/performance.md for when that is legitimate).

Cell workloads must never change without refreshing the baseline: the
event *count* of a cell is asserted exactly, so a schedule-visible
change shows up as a count mismatch rather than a misleading ratio.
"""

from __future__ import annotations

import csv
import time
from dataclasses import dataclass
from typing import Callable

from repro.alps.config import AlpsConfig
from repro.kernel import make_kernel
from repro.kernel.kconfig import KernelConfig
from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.spinner import spinner_behavior


def _kernel_config(backend: str) -> KernelConfig:
    """Cell kernel config for an explicit backend name.

    ``strict`` is carried alongside so the strict cell measures the
    reference eager kernel rather than strict-flagged dispatch quirks.
    """
    return KernelConfig(strict=(backend == "strict"), backend=backend)


@dataclass(frozen=True)
class CellResult:
    name: str
    events: int
    best_wall_s: float

    @property
    def events_per_sec(self) -> float:
        return self.events / self.best_wall_s


def _engine_chain() -> int:
    eng = Engine(seed=0)

    def chain(event):
        if eng.now < 1_000_000:
            eng.after(10, chain)

    eng.at(0, chain)
    eng.run_until(2_000_000)
    return eng.events_processed


def _kernel_spinners_8() -> int:
    eng = Engine(seed=0)
    k = Kernel(eng, KernelConfig())
    for i in range(8):
        k.spawn(f"p{i}", spinner_behavior())
    eng.run_until(sec(100))
    return eng.events_processed


def _alps_cell(n: int, backend: str = "auto") -> Callable[[], int]:
    def run() -> int:
        kwargs = {}
        if backend != "auto":
            kwargs["kernel_config"] = _kernel_config(backend)
        cw = build_controlled_workload(
            [5] * n, AlpsConfig(quantum_us=ms(10)), seed=0, **kwargs
        )
        cw.engine.run_until(sec(10))
        return cw.engine.events_processed

    return run


def _kernel_decay_cell(n: int, backend: str) -> Callable[[], int]:
    """Kernel-only cell dominated by the per-second schedcpu decay pass.

    No ALPS agent: with ``n`` spinners and one CPU, almost all wall time
    goes into decaying ``n`` PCBs once per simulated second — the path
    the batch backend vectorizes, so this pair carries the batch-speedup
    gate.
    """

    def run() -> int:
        eng = Engine(seed=0)
        kernel = make_kernel(eng, _kernel_config(backend))
        for i in range(n):
            kernel.spawn(f"p{i}", spinner_behavior())
        eng.run_until(sec(20))
        return eng.events_processed

    return run


#: name -> zero-arg callable returning the number of events processed.
CELLS: dict[str, Callable[[], int]] = {
    "engine_chain": _engine_chain,
    "kernel_spinners_8": _kernel_spinners_8,
    "alps_cell_5": _alps_cell(5),
    "alps_cell_10": _alps_cell(10),
    "alps_cell_20": _alps_cell(20),
    "alps_cell_40": _alps_cell(40),
    # Backend pairs: the same workload under an explicit kernel backend.
    # Event counts must be identical within a pair (schedule-invisible
    # backends); events/sec is what the speedup gate compares.
    "alps_cell_20_strict": _alps_cell(20, "strict"),
    "alps_cell_20_batch": _alps_cell(20, "batch"),
    "alps_cell_20_resident": _alps_cell(20, "resident"),
    "alps_cell_400_strict": _alps_cell(400, "strict"),
    "alps_cell_400_batch": _alps_cell(400, "batch"),
    "alps_cell_400_resident": _alps_cell(400, "resident"),
    # Beyond-paper scale: the regime the resident backend targets
    # (thousands of scheduled entities under one ALPS agent).
    "alps_cell_1000": _alps_cell(1000),
    "kernel_decay_3000_strict": _kernel_decay_cell(3000, "strict"),
    "kernel_decay_3000_batch": _kernel_decay_cell(3000, "batch"),
    "kernel_decay_3000_resident": _kernel_decay_cell(3000, "resident"),
}

#: Kernel backend measured by each cell ("auto" = the library default).
#: Written as the ``backend`` column of the baseline CSV.
CELL_BACKENDS: dict[str, str] = {
    name: (
        "strict"
        if name.endswith("_strict")
        else (
            "batch"
            if name.endswith("_batch")
            else "resident" if name.endswith("_resident") else "auto"
        )
    )
    for name in CELLS
}

#: Backend pairs (strict cell, batch cell) whose event counts must
#: match exactly and whose events/sec ratio is the batch speedup.
BACKEND_PAIRS: dict[str, tuple[str, str]] = {
    "alps_cell_20": ("alps_cell_20_strict", "alps_cell_20_batch"),
    "alps_cell_400": ("alps_cell_400_strict", "alps_cell_400_batch"),
    "kernel_decay_3000": (
        "kernel_decay_3000_strict",
        "kernel_decay_3000_batch",
    ),
}

#: Resident pairs (batch cell, resident cell): same exact-event-count
#: contract; the events/sec ratio is the resident-over-batch speedup.
RESIDENT_PAIRS: dict[str, tuple[str, str]] = {
    "alps_cell_20": ("alps_cell_20_batch", "alps_cell_20_resident"),
    "alps_cell_400": ("alps_cell_400_batch", "alps_cell_400_resident"),
    "kernel_decay_3000": (
        "kernel_decay_3000_batch",
        "kernel_decay_3000_resident",
    ),
}

#: The pair carrying the ``REPRO_SUBSTRATE_MIN_SPEEDUP`` gate.
GATE_PAIR = "kernel_decay_3000"

#: The RESIDENT_PAIRS entry carrying the resident speedup gate.
RESIDENT_GATE_PAIR = "kernel_decay_3000"

#: The cells forming the Fig. 8/9-style scalability sweep (wall-clock
#: series over process count).
SWEEP_CELLS = ("alps_cell_5", "alps_cell_10", "alps_cell_20", "alps_cell_40")


def run_cell(name: str, *, repeats: int = 3) -> CellResult:
    """Run one cell ``repeats`` times; keep the best wall time."""
    fn = CELLS[name]
    fn()  # warm-up (imports, allocator, caches)
    events = 0
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        events = fn()
        wall = time.perf_counter() - t0
        if wall < best:
            best = wall
    return CellResult(name=name, events=events, best_wall_s=best)


def run_all(*, repeats: int = 3) -> list[CellResult]:
    return [run_cell(name, repeats=repeats) for name in CELLS]


def load_baseline(path) -> dict[str, dict[str, float]]:
    """Parse the committed baseline CSV into {cell: row} (see
    ``refresh_substrate_baseline.py`` for the writer).  The ``backend``
    column is carried through as a string; baselines predating it load
    as ``auto``."""
    out: dict[str, dict[str, float]] = {}
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            out[row["cell"]] = {
                "backend": row.get("backend", "auto"),
                "events": int(row["events"]),
                "events_per_sec": float(row["events_per_sec"]),
                "best_wall_s": float(row["best_wall_s"]),
            }
    return out
