"""Robustness — allocation accuracy degradation vs fault rate.

Sweeps the standard fault mix (signal loss/delay, transient read
failures, agent stalls, agent crash-with-restart at the higher rates)
and reports the accuracy-degradation curve against the fault-free
baseline.  Reproduction targets: the rate-0 point is *exactly* the
clean path (fault injection is free when idle), degradation grows with
the fault rate without cliffing into loss of control, and no run ends
with a live controlled process wedged in SIGSTOP.
"""

import math

import pytest

from benchmarks.conftest import emit
from repro.alps.config import AlpsConfig
from repro.analysis.ascii_plot import ascii_series_plot
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.experiments.common import run_for_cycles
from repro.experiments.robustness import robustness_sweep
from repro.faults.plan import default_fault_plan
from repro.units import ms
from repro.workloads.scenarios import build_controlled_workload

RATES = (0.0, 0.02, 0.05, 0.1, 0.2)
CYCLES = 60
SEEDS = (0, 1)


def _sweep():
    return robustness_sweep(
        rates=RATES, cycles=CYCLES, seeds=SEEDS
    )


def _clean_reference_error():
    """The same workload with *no injector at all* (not even a null
    plan), for the fault-rate-0 equivalence claim."""
    from repro.experiments.robustness import DEFAULT_SHARES
    from repro.metrics.accuracy import mean_rms_relative_error

    errors = []
    for seed in SEEDS:
        cw = build_controlled_workload(
            list(DEFAULT_SHARES), AlpsConfig(quantum_us=ms(10)), seed=seed
        )
        run_for_cycles(cw, CYCLES + 5)
        errors.append(mean_rms_relative_error(cw.agent.cycle_log, skip=5))
    return sum(errors) / len(errors)


def test_robustness_fault_sweep(benchmark, results_dir):
    points = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        [
            p.fault_rate,
            round(p.mean_rms_error_pct, 2),
            round(p.degradation_pct, 2),
            p.signals_dropped,
            p.signals_delayed,
            p.reads_failed,
            p.stalls_injected,
            p.agent_crashes,
            p.agent_restarts,
            p.heals,
            p.wedged_at_end,
        ]
        for p in points
    ]
    emit(
        "ROBUSTNESS — accuracy degradation vs fault rate",
        format_table(
            [
                "rate",
                "err %",
                "degr %",
                "sig drop",
                "sig delay",
                "rd fail",
                "stalls",
                "crashes",
                "restarts",
                "heals",
                "wedged",
            ],
            rows,
        )
        + "\n\n"
        + ascii_series_plot(
            {
                "error %": (
                    [p.fault_rate for p in points],
                    [p.mean_rms_error_pct for p in points],
                )
            },
            title="mean RMS error % vs fault rate",
            xlabel="rate",
            ylabel="err %",
        ),
    )
    write_csv(
        results_dir / "robustness_faults.csv",
        [
            {
                "fault_rate": p.fault_rate,
                "mean_rms_error_pct": p.mean_rms_error_pct,
                "degradation_pct": p.degradation_pct,
                "cycles": p.cycles,
                "signals_dropped": p.signals_dropped,
                "signals_delayed": p.signals_delayed,
                "reads_failed": p.reads_failed,
                "stalls_injected": p.stalls_injected,
                "agent_crashes": p.agent_crashes,
                "agent_restarts": p.agent_restarts,
                "rebaselines": p.rebaselines,
                "heals": p.heals,
                "signal_retries": p.signal_retries,
                "read_retries": p.read_retries,
                "wedged_at_end": p.wedged_at_end,
            }
            for p in points
        ],
    )

    # The reproduction claims.
    by_rate = {p.fault_rate: p for p in points}
    # 1. Fault rate 0 is byte-equivalent to running without an injector.
    assert by_rate[0.0].degradation_pct == 0.0
    assert by_rate[0.0].mean_rms_error_pct == pytest.approx(
        _clean_reference_error(), abs=1e-9
    )
    # 2. Graceful degradation, not loss of control: errors stay finite
    #    and the heaviest fault rate hurts more than the clean path.
    for p in points:
        assert math.isfinite(p.mean_rms_error_pct)
    assert (
        by_rate[max(RATES)].mean_rms_error_pct
        > by_rate[0.0].mean_rms_error_pct
    )
    # 3. Faults were actually injected and recovered from.
    heavy = by_rate[max(RATES)]
    assert heavy.signals_dropped > 0
    assert heavy.reads_failed > 0
    assert heavy.agent_restarts == heavy.agent_crashes > 0
    # 4. The no-wedged-subject guarantee.
    assert all(p.wedged_at_end == 0 for p in points)


def test_fault_schedule_replays_identically(results_dir):
    """Same plan seed ⇒ byte-identical fault trace (determinism)."""

    def trace(seed: int) -> list[str]:
        plan = default_fault_plan(0.15, seed=seed, horizon_us=4_000_000)
        cw = build_controlled_workload(
            [1, 2, 3], AlpsConfig(quantum_us=ms(10)), seed=3, fault_plan=plan
        )
        cw.engine.run_until(3_000_000)
        return cw.injector.trace_lines()

    first, second = trace(7), trace(7)
    assert first == second
    assert len(first) > 0
    assert trace(8) != first
