"""Figure 7 + Table 3 — multiple concurrent ALPS schedulers.

Three phased applications (A{7,8,9} at t=0, B{4,5,6} at 3 s, C{1,2,3}
at 6 s), each under its own ALPS.  Reproduction targets: within every
group and phase, the fraction of the group's CPU each process receives
matches its share to within a few percent relative error (paper:
average 0.93 %, max 3.3 %).
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.ascii_plot import ascii_series_plot
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.experiments.multi import run_multi_alps_experiment


def test_figure7_table3_multi_alps(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_multi_alps_experiment(seed=0), rounds=1, iterations=1
    )

    # Figure 7: cumulative consumption series.
    series = {}
    for key in sorted(result.series, key=lambda k: result.series[k].share):
        s = result.series[key]
        series[f"{s.share} shares ({s.label})"] = (
            s.times_us / 1000.0,
            s.cumulative_us / 1000.0,
        )
    emit(
        "FIGURE 7 — Cumulative CPU (ms) vs wall time (ms), 3 ALPSs",
        ascii_series_plot(
            series, title="cumulative CPU", xlabel="t (ms)", ylabel="CPU (ms)"
        ),
    )

    # Table 3.
    rows = []
    table = result.table3()
    for row in table:
        rows.append(
            [
                row["share"],
                row["target_pct"],
                row["phase1_pct"], row["phase1_relerr"],
                row["phase2_pct"], row["phase2_relerr"],
                row["phase3_pct"], row["phase3_relerr"],
            ]
        )
    emit(
        "TABLE 3 — Accuracy of multiple ALPSs (per-phase in-group %CPU)",
        format_table(
            ["S", "target%", "ph1 %cpu", "%re", "ph2 %cpu", "%re", "ph3 %cpu", "%re"],
            rows,
        ),
    )
    write_csv(results_dir / "table3_multi.csv", table)

    errors = [
        row[f"phase{p}_relerr"]
        for row in table
        for p in (1, 2, 3)
        if row[f"phase{p}_relerr"] is not None
    ]
    assert max(errors) < 6.0  # paper max: 3.3 %
    assert np.mean(errors) < 3.0  # paper mean: 0.93 %
