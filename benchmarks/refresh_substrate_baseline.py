"""Regenerate benchmarks/results/substrate_baseline.csv.

Run this ONLY when the cell workloads themselves change or when
retiring an old baseline after a verified, intentional substrate
change (docs/performance.md).  Refreshing to hide a regression defeats
the perf gate.

Usage:
    PYTHONPATH=src:benchmarks python benchmarks/refresh_substrate_baseline.py
"""

from __future__ import annotations

import csv
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from substrate_cells import run_all  # noqa: E402

OUT = pathlib.Path(__file__).parent / "results" / "substrate_baseline.csv"


def main() -> None:
    results = run_all(repeats=5)
    OUT.parent.mkdir(parents=True, exist_ok=True)
    with open(OUT, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["cell", "events", "events_per_sec", "best_wall_s"])
        for r in results:
            writer.writerow(
                [r.name, r.events, f"{r.events_per_sec:.1f}", f"{r.best_wall_s:.6f}"]
            )
            print(f"{r.name}: {r.events} events, {r.events_per_sec:,.1f} ev/s")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
