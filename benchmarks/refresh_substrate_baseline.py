"""Regenerate benchmarks/results/substrate_baseline.csv.

Run this ONLY when the cell workloads themselves change or when
retiring an old baseline after a verified, intentional substrate
change (docs/performance.md).  Refreshing to hide a regression defeats
the perf gate.

Usage:
    PYTHONPATH=src:benchmarks python benchmarks/refresh_substrate_baseline.py [--partial] [CELL ...]

With no arguments every cell is re-measured.  Naming cells refreshes
only those rows and carries the rest of the committed baseline forward
verbatim — the right move when *adding* cells (e.g. the backend pairs):
frozen reference rows like the fast-path target's ``alps_cell_20`` must
not be silently re-anchored to today's throughput.  ``--partial`` is
the same thing computed for you: it measures exactly the cells that
have no committed row yet and carries every existing row forward.
"""

from __future__ import annotations

import csv
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from substrate_cells import CELL_BACKENDS, CELLS, load_baseline, run_cell  # noqa: E402

OUT = pathlib.Path(__file__).parent / "results" / "substrate_baseline.csv"


def main(argv: list[str]) -> None:
    partial = "--partial" in argv
    only = set(argv) - {"--partial"}
    unknown = only - set(CELLS)
    if unknown:
        raise SystemExit(f"unknown cells: {', '.join(sorted(unknown))}")
    if partial:
        committed = load_baseline(OUT) if OUT.exists() else {}
        only |= set(CELLS) - set(committed)
        if not only:
            raise SystemExit("--partial: no new cells; baseline already complete")
    carried = load_baseline(OUT) if only and OUT.exists() else {}
    OUT.parent.mkdir(parents=True, exist_ok=True)
    with open(OUT, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(
            ["cell", "backend", "events", "events_per_sec", "best_wall_s"]
        )
        for name in CELLS:
            backend = CELL_BACKENDS[name]
            if only and name not in only and name in carried:
                row = carried[name]
                writer.writerow(
                    [
                        name,
                        backend,
                        row["events"],
                        f"{row['events_per_sec']:.1f}",
                        f"{row['best_wall_s']:.6f}",
                    ]
                )
                print(f"{name} [{backend}]: carried forward")
                continue
            r = run_cell(name, repeats=5)
            writer.writerow(
                [
                    name,
                    backend,
                    r.events,
                    f"{r.events_per_sec:.1f}",
                    f"{r.best_wall_s:.6f}",
                ]
            )
            print(
                f"{name} [{backend}]: {r.events} events, "
                f"{r.events_per_sec:,.1f} ev/s"
            )
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main(sys.argv[1:])
