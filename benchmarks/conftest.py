"""Benchmark harness helpers.

Each benchmark file regenerates one paper table/figure: it runs the
experiment under pytest-benchmark timing, prints the same rows/series
the paper reports (run with ``-s`` to see them inline), and writes a
CSV copy under ``benchmarks/results/``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(title: str, body: str) -> None:
    """Print a labelled result block (visible with ``pytest -s``)."""
    line = "=" * 72
    # Write to stderr as well so output survives default capture in logs.
    for stream in (sys.stdout,):
        print(f"\n{line}\n{title}\n{line}\n{body}\n", file=stream)
