"""Table 1 — Primary ALPS operation times (µs).

Measures the three primitives live on this host (timer-event receipt,
reading CPU time of n processes, signalling a process) and prints them
next to the paper's FreeBSD-4.8 constants.  Numbers differ (modern
hardware, /proc instead of kvm); the reproduced *shape* is that the
measurement operation dominates and grows linearly with n.
"""

import os
import signal

import pytest

from benchmarks.conftest import emit
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.experiments.table1_ops import (
    Table1Result,
    run_table1,
    time_measure_ladder,
    time_signal,
    time_timer_event,
)
from repro.hostos.procfs import read_proc_stat
from repro.hostos.spawn import spawn_spinner


def test_bench_timer_event(benchmark):
    """Cost of receiving a timer-style event (signal + sigtimedwait)."""
    signo = signal.SIGUSR1
    old = signal.signal(signo, signal.SIG_IGN)
    signal.pthread_sigmask(signal.SIG_BLOCK, {signo})
    pid = os.getpid()

    def one_event():
        os.kill(pid, signo)
        signal.sigtimedwait({signo}, 1.0)

    try:
        benchmark(one_event)
    finally:
        signal.pthread_sigmask(signal.SIG_UNBLOCK, {signo})
        signal.signal(signo, old)


def test_bench_measure_one_process(benchmark):
    """Cost of reading one process's CPU time from /proc."""
    child = spawn_spinner()
    try:
        benchmark(read_proc_stat, child.pid)
    finally:
        child.kill()
        child.wait()


def test_bench_signal(benchmark):
    """Cost of sending a signal to another process."""
    child = spawn_spinner()
    try:
        benchmark(os.kill, child.pid, signal.SIGCONT)
    finally:
        child.kill()
        child.wait()


def test_table1_summary(benchmark, results_dir):
    """Fit the full Table 1 on this host and print it beside the paper."""
    result = benchmark.pedantic(
        lambda: run_table1(quick=True), rounds=1, iterations=1
    )
    rows = [
        ["Receive a timer event",
         f"{result.timer_event_us:.2f}", f"{Table1Result.PAPER_TIMER_US:.2f}"],
        ["Measure CPU time of n processes",
         f"{result.measure_fixed_us:.1f} + {result.measure_per_proc_us:.1f}n",
         f"{Table1Result.PAPER_MEASURE_FIXED_US} + "
         f"{Table1Result.PAPER_MEASURE_PER_PROC_US}n"],
        ["Signal a process",
         f"{result.signal_us:.2f}", f"{Table1Result.PAPER_SIGNAL_US:.2f}"],
    ]
    emit(
        "TABLE 1 — Primary ALPS operation times (µs)",
        format_table(["operation", "this host", "paper (P4/FreeBSD 4.8)"], rows),
    )
    write_csv(
        results_dir / "table1_ops.csv",
        [
            {
                "operation": r[0],
                "this_host_us": r[1],
                "paper_us": r[2],
            }
            for r in rows
        ],
    )
    # Structural claim: per-process measurement dominates signalling.
    assert result.measure_per_proc_us > result.signal_us
