"""Substrate microbenchmarks: engine and kernel throughput.

Not a paper artifact — these keep an eye on the simulator itself
(events/second, ALPS steps/second), which bounds how large the paper's
sweeps can run.  Regressions here make the figure benchmarks slow.
"""

import pytest

from repro.alps.algorithm import AlpsCore, Measurement
from repro.alps.config import AlpsConfig
from repro.kernel.kconfig import KernelConfig
from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.spinner import spinner_behavior


def test_bench_engine_event_dispatch(benchmark):
    """Raw event calendar throughput (schedule + dispatch)."""

    def run():
        eng = Engine(seed=0)

        def chain(event):
            if eng.now < 100_000:
                eng.after(10, chain)

        eng.at(0, chain)
        eng.run_until(200_000)
        return eng.events_processed

    events = benchmark(run)
    assert events > 10_000


def test_bench_kernel_spinners(benchmark):
    """Simulated seconds of an 8-spinner kernel per wall call."""

    def run():
        eng = Engine(seed=0)
        k = Kernel(eng, KernelConfig())
        for i in range(8):
            k.spawn(f"p{i}", spinner_behavior())
        eng.run_until(sec(10))
        return eng.events_processed

    benchmark(run)


def test_bench_alps_controlled_simulation(benchmark):
    """End-to-end ALPS over 10 processes, 10 simulated seconds."""

    def run():
        cw = build_controlled_workload(
            [5] * 10, AlpsConfig(quantum_us=ms(10)), seed=0
        )
        cw.engine.run_until(sec(10))
        return len(cw.agent.cycle_log)

    cycles = benchmark(run)
    assert cycles > 5


def test_bench_alps_core_quantum(benchmark):
    """Pure algorithm step cost (begin + complete for 20 subjects)."""
    core = AlpsCore({i: 5 for i in range(20)}, ms(10), optimized=False)
    core.begin_quantum()
    core.complete_quantum({})

    def step():
        due = core.begin_quantum()
        core.complete_quantum(
            {sid: Measurement(consumed_us=500) for sid in due}
        )

    benchmark(step)
