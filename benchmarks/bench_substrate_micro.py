"""Substrate microbenchmarks: engine and kernel throughput.

Not a paper artifact — these keep an eye on the simulator itself
(events/second, ALPS steps/second), which bounds how large the paper's
sweeps can run.  Regressions here make the figure benchmarks slow.

Two layers:

* pytest-benchmark timings of individual hot paths (below), for
  profiling and local comparison;
* a throughput *series* over the fixed substrate cells, gated against
  the committed baseline CSV.  Event counts must match the baseline
  exactly (any optimization must stay schedule-invisible), and
  events/sec must clear ``REPRO_PERF_MIN_RATIO`` × baseline
  (default 0.3 — a loose floor that survives noisy shared runners).
  ``alps_cell_20`` additionally carries the fast-path acceptance
  target: ``REPRO_PERF_TARGET_RATIO`` × baseline (default 2.0).

The backend cells (``*_strict`` / ``*_batch`` / ``*_resident``) extend
the series with the explicit kernel backends: event counts must match
within each pair, and the decay-dominated gate pair carries both
speedup gates — batch over strict, and resident over batch — armed by
``REPRO_SUBSTRATE_MIN_SPEEDUP`` (the ``substrate-batch`` and
``substrate-resident`` CI jobs set it).
"""

import csv
import os
from pathlib import Path

import pytest

from benchmarks.conftest import emit
from benchmarks.substrate_cells import (
    BACKEND_PAIRS,
    GATE_PAIR,
    RESIDENT_GATE_PAIR,
    RESIDENT_PAIRS,
    SWEEP_CELLS,
    load_baseline,
    run_all,
    run_cell,
)
from repro.alps.algorithm import AlpsCore, Measurement
from repro.alps.config import AlpsConfig
from repro.kernel.kconfig import KernelConfig
from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.spinner import spinner_behavior

BASELINE_CSV = Path(__file__).parent / "results" / "substrate_baseline.csv"

#: Loose regression floor: current/baseline events-per-sec must exceed
#: this on every cell.  Overridable for slow CI runners.
MIN_RATIO = float(os.environ.get("REPRO_PERF_MIN_RATIO", "0.3"))
#: Fast-path acceptance target on the flagship cell (alps_cell_20).
TARGET_RATIO = float(os.environ.get("REPRO_PERF_TARGET_RATIO", "2.0"))


def test_bench_engine_event_dispatch(benchmark):
    """Raw event calendar throughput (schedule + dispatch)."""

    def run():
        eng = Engine(seed=0)

        def chain(event):
            if eng.now < 100_000:
                eng.after(10, chain)

        eng.at(0, chain)
        eng.run_until(200_000)
        return eng.events_processed

    events = benchmark(run)
    assert events > 10_000


def test_bench_kernel_spinners(benchmark):
    """Simulated seconds of an 8-spinner kernel per wall call."""

    def run():
        eng = Engine(seed=0)
        k = Kernel(eng, KernelConfig())
        for i in range(8):
            k.spawn(f"p{i}", spinner_behavior())
        eng.run_until(sec(10))
        return eng.events_processed

    benchmark(run)


def test_bench_alps_controlled_simulation(benchmark):
    """End-to-end ALPS over 10 processes, 10 simulated seconds."""

    def run():
        cw = build_controlled_workload(
            [5] * 10, AlpsConfig(quantum_us=ms(10)), seed=0
        )
        cw.engine.run_until(sec(10))
        return len(cw.agent.cycle_log)

    cycles = benchmark(run)
    assert cycles > 5


def test_bench_alps_core_quantum(benchmark):
    """Pure algorithm step cost (begin + complete for 20 subjects)."""
    core = AlpsCore({i: 5 for i in range(20)}, ms(10), optimized=False)
    core.begin_quantum()
    core.complete_quantum({})

    def step():
        due = core.begin_quantum()
        core.complete_quantum(
            {sid: Measurement(consumed_us=500) for sid in due}
        )

    benchmark(step)


# ---------------------------------------------------------------------------
# Throughput series vs the committed baseline
# ---------------------------------------------------------------------------


def test_substrate_throughput_series(results_dir):
    """Run every cell, gate against the baseline, and publish the series.

    The exact-event-count assertion is the differential backstop: a
    fast path that changes the schedule shifts the event count and
    fails loudly here even before the trace-level golden tests run.
    """
    baseline = load_baseline(BASELINE_CSV)
    results = run_all(repeats=3)
    rows = []
    lines = [
        f"{'cell':<20} {'events':>8} {'ev/s':>12} {'base ev/s':>12} {'ratio':>7}"
    ]
    for r in results:
        base = baseline[r.name]
        assert r.events == base["events"], (
            f"{r.name}: event count {r.events} != baseline {base['events']} "
            "— the substrate changed the schedule (or the cell workload "
            "changed without a baseline refresh)"
        )
        ratio = r.events_per_sec / base["events_per_sec"]
        rows.append(
            (r.name, r.events, r.events_per_sec, base["events_per_sec"], ratio)
        )
        lines.append(
            f"{r.name:<20} {r.events:>8} {r.events_per_sec:>12,.1f} "
            f"{base['events_per_sec']:>12,.1f} {ratio:>6.2f}x"
        )
        assert ratio >= MIN_RATIO, (
            f"{r.name}: throughput fell to {ratio:.2f}x of baseline "
            f"(floor {MIN_RATIO}x)"
        )
    emit("Substrate throughput series (vs committed baseline)", "\n".join(lines))
    out = results_dir / "substrate_series.csv"
    with open(out, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(
            ["cell", "events", "events_per_sec", "baseline_events_per_sec", "ratio"]
        )
        for name, events, evs, base_evs, ratio in rows:
            writer.writerow(
                [name, events, f"{evs:.1f}", f"{base_evs:.1f}", f"{ratio:.3f}"]
            )


def test_alps_cell_20_meets_speedup_target():
    """Fast-path acceptance: alps_cell_20 ≥ TARGET_RATIO × baseline."""
    baseline = load_baseline(BASELINE_CSV)["alps_cell_20"]
    result = run_cell("alps_cell_20", repeats=5)
    assert result.events == baseline["events"]
    ratio = result.events_per_sec / baseline["events_per_sec"]
    emit(
        "alps_cell_20 speedup",
        f"{result.events_per_sec:,.1f} ev/s vs baseline "
        f"{baseline['events_per_sec']:,.1f} ev/s = {ratio:.2f}x "
        f"(target {TARGET_RATIO}x)",
    )
    assert ratio >= TARGET_RATIO, (
        f"alps_cell_20 at {ratio:.2f}x baseline, below the "
        f"{TARGET_RATIO}x fast-path target"
    )


@pytest.mark.parametrize("pair", sorted(BACKEND_PAIRS))
def test_backend_pair_event_counts_match(pair):
    """Strict and batch cells of a pair must process identical event
    counts (the schedule-invisibility contract, at benchmark scale)."""
    strict_cell, batch_cell = BACKEND_PAIRS[pair]
    strict = run_cell(strict_cell, repeats=1)
    batch = run_cell(batch_cell, repeats=1)
    assert batch.events == strict.events, (
        f"{pair}: batch processed {batch.events} events vs strict "
        f"{strict.events} — the batch backend changed the schedule"
    )


#: Batch-over-strict speedup gate, activated by setting
#: ``REPRO_SUBSTRATE_MIN_SPEEDUP`` (the substrate-batch CI job sets it;
#: see docs/performance.md for the measured ceiling of the pure-Python
#: backend before pinning a value).  The ratio compares strict and
#: batch measured back-to-back in this process — machine-portable —
#: while the committed baseline anchors the event counts and provides
#: the reference throughput for the report.
MIN_SPEEDUP = os.environ.get("REPRO_SUBSTRATE_MIN_SPEEDUP")


@pytest.mark.skipif(
    MIN_SPEEDUP is None,
    reason="speedup gate disarmed (set REPRO_SUBSTRATE_MIN_SPEEDUP)",
)
def test_batch_backend_meets_speedup_gate():
    """Batch ≥ MIN_SPEEDUP × strict on the decay-dominated gate pair."""
    baseline = load_baseline(BASELINE_CSV)
    strict_cell, batch_cell = BACKEND_PAIRS[GATE_PAIR]
    strict = run_cell(strict_cell, repeats=3)
    batch = run_cell(batch_cell, repeats=3)
    assert batch.events == strict.events
    for result, cell in ((strict, strict_cell), (batch, batch_cell)):
        assert result.events == baseline[cell]["events"], (
            f"{cell}: event count {result.events} != committed baseline "
            f"{baseline[cell]['events']}"
        )
    speedup = batch.events_per_sec / strict.events_per_sec
    base_speedup = (
        baseline[batch_cell]["events_per_sec"]
        / baseline[strict_cell]["events_per_sec"]
    )
    emit(
        f"Batch speedup gate ({GATE_PAIR})",
        f"batch {batch.events_per_sec:,.1f} ev/s vs strict "
        f"{strict.events_per_sec:,.1f} ev/s = {speedup:.2f}x "
        f"(committed baseline ratio {base_speedup:.2f}x, "
        f"gate {float(MIN_SPEEDUP):.1f}x)",
    )
    assert speedup >= float(MIN_SPEEDUP), (
        f"batch backend at {speedup:.2f}x strict on {GATE_PAIR}, below "
        f"the {float(MIN_SPEEDUP):.1f}x gate (committed baseline ratio: "
        f"{base_speedup:.2f}x)"
    )


@pytest.mark.parametrize("pair", sorted(RESIDENT_PAIRS))
def test_resident_pair_event_counts_match(pair):
    """Batch and resident cells of a pair must process identical event
    counts (the resident backend is schedule-invisible too)."""
    batch_cell, resident_cell = RESIDENT_PAIRS[pair]
    batch = run_cell(batch_cell, repeats=1)
    resident = run_cell(resident_cell, repeats=1)
    assert resident.events == batch.events, (
        f"{pair}: resident processed {resident.events} events vs batch "
        f"{batch.events} — the resident backend changed the schedule"
    )


#: Resident-over-batch speedup floor when the gate is armed.  The
#: default depends on which fastloop implementation loaded: the
#: interpreted dispatch loop leaves more scalar overhead in both
#: backends, compressing the ratio, so the floors differ (1.5x
#: interpreted, 2.0x compiled).  Override with
#: ``REPRO_RESIDENT_MIN_SPEEDUP`` for unusual machines.
def _resident_min_speedup() -> float:
    override = os.environ.get("REPRO_RESIDENT_MIN_SPEEDUP")
    if override is not None:
        return float(override)
    from repro.sim.fastloop import ACTIVE_IMPL

    return 2.0 if ACTIVE_IMPL == "compiled" else 1.5


@pytest.mark.skipif(
    MIN_SPEEDUP is None,
    reason="speedup gate disarmed (set REPRO_SUBSTRATE_MIN_SPEEDUP)",
)
def test_resident_backend_meets_speedup_gate():
    """Resident ≥ floor × batch on the decay-dominated gate pair.

    Armed together with the batch gate by
    ``REPRO_SUBSTRATE_MIN_SPEEDUP`` (the ``substrate-resident`` CI job
    arms it for both fastloop implementations); the floor itself comes
    from :func:`_resident_min_speedup`.  Both cells are measured
    back-to-back in this process so the ratio is machine-portable, and
    both event counts must equal the committed baseline — a resident
    "speedup" that changes the schedule is a bug, not a win.
    """
    from repro.sim.fastloop import ACTIVE_IMPL

    floor = _resident_min_speedup()
    baseline = load_baseline(BASELINE_CSV)
    batch_cell, resident_cell = RESIDENT_PAIRS[RESIDENT_GATE_PAIR]
    batch = run_cell(batch_cell, repeats=5)
    resident = run_cell(resident_cell, repeats=5)
    assert resident.events == batch.events
    for result, cell in ((batch, batch_cell), (resident, resident_cell)):
        assert result.events == baseline[cell]["events"], (
            f"{cell}: event count {result.events} != committed baseline "
            f"{baseline[cell]['events']}"
        )
    speedup = resident.events_per_sec / batch.events_per_sec
    emit(
        f"Resident speedup gate ({RESIDENT_GATE_PAIR}, fastloop={ACTIVE_IMPL})",
        f"resident {resident.events_per_sec:,.1f} ev/s vs batch "
        f"{batch.events_per_sec:,.1f} ev/s = {speedup:.2f}x "
        f"(floor {floor:.1f}x)",
    )
    assert speedup >= floor, (
        f"resident backend at {speedup:.2f}x batch on {RESIDENT_GATE_PAIR}, "
        f"below the {floor:.1f}x gate (fastloop={ACTIVE_IMPL})"
    )


def test_sweep_wall_clock_series(results_dir):
    """Wall-clock growth across the ALPS cell sizes (5..40 workers).

    Publishes the series the scalability sweeps care about: how fast a
    fixed 10-simulated-second run slows down as the controlled group
    grows.
    """
    series = [run_cell(name, repeats=2) for name in SWEEP_CELLS]
    lines = [f"{'cell':<20} {'wall s':>10} {'events':>8}"]
    for r in series:
        assert r.best_wall_s > 0.0
        lines.append(f"{r.name:<20} {r.best_wall_s:>10.4f} {r.events:>8}")
    emit("ALPS cell wall-clock sweep", "\n".join(lines))
    out = results_dir / "substrate_sweep.csv"
    with open(out, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["cell", "best_wall_s", "events"])
        for r in series:
            writer.writerow([r.name, f"{r.best_wall_s:.6f}", r.events])


# ---------------------------------------------------------------------------
# Observability no-op overhead gate
# ---------------------------------------------------------------------------

#: Ceiling on the cost of carrying a *disabled* observer through the
#: alps_cell_20 hot path (the docs/observability.md contract: off-path
#: instrumentation is one attribute read).  Overridable for noisy CI.
OBS_MAX_OVERHEAD = float(os.environ.get("REPRO_OBS_MAX_OVERHEAD", "0.05"))


def test_disabled_observer_overhead_is_negligible():
    """alps_cell_20 with a disabled observer within OBS_MAX_OVERHEAD."""
    import time

    from repro.obs import Observer

    def run(observer):
        cw = build_controlled_workload(
            [5] * 20, AlpsConfig(quantum_us=ms(10)), seed=0, observer=observer
        )
        cw.engine.run_until(sec(10))
        return cw.engine.events_processed

    def best_of(observer_factory, repeats=5):
        best = float("inf")
        events = 0
        for _ in range(repeats):
            obs = observer_factory()
            t0 = time.perf_counter()
            events = run(obs)
            wall = time.perf_counter() - t0
            if wall < best:
                best = wall
        return events, best

    best_of(lambda: None, repeats=1)  # warm-up
    base_events, base = best_of(lambda: None)
    obs_events, observed = best_of(Observer.disabled)
    assert obs_events == base_events, (
        "observer changed the schedule: "
        f"{obs_events} events vs {base_events} without"
    )
    overhead = observed / base - 1.0
    emit(
        "Disabled-observer overhead (alps_cell_20)",
        f"bare {base:.4f}s vs observed {observed:.4f}s = "
        f"{overhead:+.2%} (ceiling {OBS_MAX_OVERHEAD:.0%})",
    )
    assert overhead <= OBS_MAX_OVERHEAD, (
        f"disabled observer costs {overhead:+.2%} on alps_cell_20, "
        f"above the {OBS_MAX_OVERHEAD:.0%} no-op ceiling"
    )
