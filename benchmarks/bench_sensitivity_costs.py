"""Sensitivity — breakdown threshold vs ALPS operation cost scale.

Validates the Section 4.2 analytic model beyond the paper's single
testbed: scaling the Table 1 cost model (a slower or faster host)
moves the breakdown threshold, and the measured knee tracks the
``U_Q(N*) = 100/(N*+1)`` prediction at every scale.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.experiments.sensitivity import cost_sensitivity_sweep


def test_cost_sensitivity(benchmark, results_dir):
    points = benchmark.pedantic(
        lambda: cost_sensitivity_sweep(factors=(0.5, 1.0, 2.0, 4.0)),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            f"{p.cost_factor}x",
            f"{p.fit_slope:.4f}N + {p.fit_intercept:.4f}",
            round(p.predicted_n),
            p.observed_n,
        ]
        for p in points
    ]
    emit(
        "SENSITIVITY — breakdown threshold vs operation-cost scale "
        "(equal shares, Q = 10 ms)",
        format_table(
            ["cost scale", "U(N) fit", "predicted N*", "observed knee"], rows
        )
        + "\n\n(1.0x is the paper's P4 cost model; the paper predicts 39 "
        "and observes 40 there)",
    )
    write_csv(
        results_dir / "sensitivity_costs.csv",
        [
            {
                "cost_factor": p.cost_factor,
                "fit_slope": p.fit_slope,
                "fit_intercept": p.fit_intercept,
                "predicted_n": p.predicted_n,
                "observed_n": p.observed_n,
            }
            for p in points
        ],
    )

    # Thresholds fall monotonically as costs grow.
    preds = [p.predicted_n for p in points]
    assert all(a > b for a, b in zip(preds, preds[1:]))
    # Measured knees track predictions within a loose band.
    for p in points:
        if p.observed_n is not None:
            assert p.observed_n == pytest.approx(p.predicted_n, rel=0.8)
