"""Share tree — sharded cells hold intra-cell ratios; attach is free.

Two claims from docs/share_tree.md, gated here:

* **Ratios under sharding**: on a cells × subtree-depth grid of
  :class:`~repro.sharetree.ShardedAlpsPlane` runs, every cell's agent
  keeps its *own* subjects' attained fractions proportional to their
  tree-resolved effective shares, at every depth.  (Cross-cell
  proportions belong to the kernel — the sharding trade the docs
  chapter discusses — so the assertion is strictly per cell.)
* **Flat attach overhead**: attaching a flat-equivalent
  :class:`~repro.sharetree.ShareTree` to the standard single-agent
  workload is schedule-identical (tests prove byte-identity); this
  benchmark gates the *wall-clock* cost of carrying the tree under
  ``REPRO_SHARETREE_MAX_OVERHEAD`` (fraction, default 0.05 — i.e. ≤5 %
  vs the bare flat run, best-of-3 each arm).
"""

import os
import time

from benchmarks.conftest import emit
from repro.alps.config import AlpsConfig
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.metrics.accuracy import per_subject_fractions
from repro.sharetree import ShardedAlpsPlane, ShareTree
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload

#: Max fractional wall-time overhead of a flat-equivalent tree attach.
MAX_OVERHEAD = float(os.environ.get("REPRO_SHARETREE_MAX_OVERHEAD", "0.05"))

#: The grid: concurrent cells × share-tree depth.
CELL_COUNTS = (1, 2)
DEPTHS = (1, 2, 3)

#: Warm-up cycles excluded from attained fractions.
SKIP = 5
#: Per-cell ratio tolerance (absolute, on fractions within the cell).
TOLERANCE = 0.03

HORIZON_US = sec(10)
FLAT_SHARES = [1, 2, 3, 4, 5]
# Long enough that the best-of-3 arms dominate scheduler/allocator
# noise — a ±5 % gate on a tens-of-ms arm flaps on shared machines.
FLAT_HORIZON_US = sec(40)


def tree_of_depth(depth: int) -> ShareTree:
    """A deterministic tree with leaves at exactly ``depth`` levels.

    Depth 1 is four weighted leaves at the root (the flat shape);
    each extra level nests two weighted groups above them.
    """
    tree = ShareTree()
    sid = 0

    def build(prefix: str, level: int) -> None:
        nonlocal sid
        if level == depth:
            for i in range(2):
                path = f"{prefix}l{i}" if prefix else f"l{sid}"
                tree.leaf(path, sid=sid, weight=i + 1)
                sid += 1
            return
        for i in range(2):
            path = f"{prefix}g{i}" if prefix else f"g{i}"
            tree.group(path, i + 1)
            build(path + "/", level + 1)

    if depth == 1:
        for i in range(4):
            tree.leaf(f"l{i}", sid=sid, weight=i + 1)
            sid += 1
    else:
        build("", 1)
    return tree


def _cell_ratio_error(plane: ShardedAlpsPlane) -> float:
    """Worst |attained − target| fraction across every cell's subjects,
    where targets are the tree's effective shares renormalised within
    the cell (the quantity one agent can actually enforce)."""
    eff = plane.tree.effective_shares()
    worst = 0.0
    for agent in plane.agents.values():
        sids = sorted(agent.subjects)
        attained = per_subject_fractions(agent.cycle_log, skip=SKIP)
        cell_total = sum(eff[sid] for sid in sids) or 1
        for sid in sids:
            target = eff[sid] / cell_total
            worst = max(worst, abs(attained.get(sid, 0.0) - target))
    return worst


def _run_grid():
    rows = []
    for cells in CELL_COUNTS:
        for depth in DEPTHS:
            plane = ShardedAlpsPlane(
                tree_of_depth(depth),
                AlpsConfig(quantum_us=ms(10)),
                cells=cells,
                seed=0,
            )
            t0 = time.perf_counter()
            plane.run_until(HORIZON_US)
            wall_s = time.perf_counter() - t0
            plane.tree.check_conservation()
            rows.append(
                {
                    "cells": cells,
                    "depth": depth,
                    "leaves": plane.tree.leaf_count,
                    "agents": len(plane.agents),
                    "ratio_err": _cell_ratio_error(plane),
                    "overhead": plane.overhead_fraction(),
                    "wall_s": wall_s,
                }
            )
    return rows


def _flat_arm(attach_tree: bool) -> float:
    """Best-of-3 wall time of the flat workload, tree on or off."""
    best = float("inf")
    for _ in range(3):
        tree = ShareTree.flat(FLAT_SHARES) if attach_tree else None
        cw = build_controlled_workload(
            FLAT_SHARES,
            AlpsConfig(quantum_us=ms(10)),
            seed=0,
            sharetree=tree,
        )
        t0 = time.perf_counter()
        cw.engine.run_until(FLAT_HORIZON_US)
        best = min(best, time.perf_counter() - t0)
    return best


def test_sharded_cells_hold_ratios(benchmark, results_dir):
    rows = benchmark.pedantic(_run_grid, rounds=1, iterations=1)

    emit(
        "SHARE TREE — per-cell ratio error across cells × depth",
        format_table(
            ["cells", "depth", "leaves", "agents", "worst ratio err",
             "agent overhead"],
            [
                [r["cells"], r["depth"], r["leaves"], r["agents"],
                 f"{r['ratio_err']:.1%}", f"{r['overhead']:.2%}"]
                for r in rows
            ],
        )
        + "\n\nintra-cell ratios track effective shares at every depth; "
        "cross-cell proportions are the kernel's (docs/share_tree.md).",
    )
    write_csv(results_dir / "sharetree_cells.csv", rows)

    for r in rows:
        assert r["ratio_err"] <= TOLERANCE, (
            f"cells={r['cells']} depth={r['depth']}: worst intra-cell "
            f"ratio error {r['ratio_err']:.1%} exceeds {TOLERANCE:.0%}"
        )


def test_flat_tree_attach_overhead(results_dir):
    _flat_arm(attach_tree=True)  # untimed: warm allocator/caches for both
    bare_s = _flat_arm(attach_tree=False)
    treed_s = _flat_arm(attach_tree=True)
    overhead = treed_s / bare_s - 1.0

    emit(
        "SHARE TREE — flat-equivalent attach wall overhead",
        f"bare {bare_s * 1e3:.1f} ms vs treed {treed_s * 1e3:.1f} ms "
        f"-> {overhead:+.2%} (gate {MAX_OVERHEAD:.0%})",
    )
    write_csv(
        results_dir / "sharetree_attach_overhead.csv",
        [{"bare_s": bare_s, "treed_s": treed_s, "overhead": overhead}],
    )
    assert overhead <= MAX_OVERHEAD, (
        f"flat tree attach costs {overhead:+.2%} wall time, over the "
        f"REPRO_SHARETREE_MAX_OVERHEAD={MAX_OVERHEAD:.0%} gate"
    )
