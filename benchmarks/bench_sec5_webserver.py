"""Section 5 — shared web server isolation with ALPS.

Three prefork sites (users) on one CPU, RUBBoS-like dynamic content,
closed-loop clients.  Reproduction targets: without ALPS the kernel
divides throughput roughly evenly (paper: {29, 30, 40} req/s); with one
ALPS scheduling the users at shares {1, 2, 3} and Q = 100 ms the
throughputs reapportion to ≈ 1:2:3 (paper: {18, 35, 53} req/s) with
small overhead.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.experiments.webserver import run_webserver_experiment


def test_section5_webserver(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_webserver_experiment(warmup_s=15.0, measure_s=45.0, seed=0),
        rounds=1,
        iterations=1,
    )

    rows = []
    paper_base = (29, 30, 40)
    paper_alps = (18, 35, 53)
    for i, share in enumerate(result.shares):
        rows.append(
            [
                f"site {i + 1}",
                share,
                round(result.baseline_rps[i], 1),
                paper_base[i],
                round(result.alps_rps[i], 1),
                paper_alps[i],
            ]
        )
    rows.append(
        [
            "total",
            sum(result.shares),
            round(sum(result.baseline_rps), 1),
            sum(paper_base),
            round(sum(result.alps_rps), 1),
            sum(paper_alps),
        ]
    )
    emit(
        "SECTION 5 — Shared web server throughput (requests/second)",
        format_table(
            [
                "site", "share",
                "kernel-only", "paper kernel-only",
                "with ALPS", "paper with ALPS",
            ],
            rows,
        )
        + f"\n\nALPS overhead: {result.alps_overhead_pct:.2f}%"
        + f"   DB utilisation: {result.db_utilization:.0%}",
    )
    write_csv(
        results_dir / "sec5_webserver.csv",
        [
            {
                "site": i + 1,
                "share": result.shares[i],
                "baseline_rps": result.baseline_rps[i],
                "alps_rps": result.alps_rps[i],
            }
            for i in range(3)
        ],
    )

    # Kernel-only: roughly even split.
    for f in result.baseline_fractions:
        assert f == pytest.approx(1 / 3, abs=0.08)
    # With ALPS: 1:2:3.
    assert result.alps_fractions[0] == pytest.approx(1 / 6, abs=0.04)
    assert result.alps_fractions[1] == pytest.approx(2 / 6, abs=0.04)
    assert result.alps_fractions[2] == pytest.approx(3 / 6, abs=0.04)
    # Total service rate preserved (work-conserving reapportionment).
    assert sum(result.alps_rps) > 0.8 * sum(result.baseline_rps)
    assert result.alps_overhead_pct < 2.0
