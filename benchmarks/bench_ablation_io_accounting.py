"""Ablation (§2.4) — blocked-process accounting.

DESIGN.md calls out the blocked-process heuristic (charge one quantum
when a process is observed blocked) as a load-bearing design choice:
without it, a blocked process "limit[s] the progress of other
processes that are ready to execute, by delaying the end of a cycle".

This bench runs the Figure 6 workload with `track_io` on and off and
compares (a) how much CPU the ready processes receive while the
2-share process does I/O and (b) the real-time length of cycles.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.alps.config import AlpsConfig
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.experiments.common import run_for_cycles
from repro.units import ms, sec
from repro.workloads.io_pattern import compute_sleep_behavior
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.spinner import spinner_behavior


def _run(track_io: bool):
    behaviors = [
        spinner_behavior(),
        compute_sleep_behavior(ms(80), ms(240), warmup_cpu_us=sec(4)),
        spinner_behavior(),
    ]
    cw = build_controlled_workload(
        [1, 2, 3],
        AlpsConfig(quantum_us=ms(10), track_io=track_io),
        seed=0,
        behaviors=behaviors,
    )
    run_for_cycles(cw, 600, max_sim_us=sec(120))
    log = cw.agent.cycle_log
    # Only cycles after the I/O pattern begins (~12 s of real time).
    recs = [r for r in log if r.end_time > sec(16)]
    cycle_gaps = np.diff([r.end_time for r in recs])
    util = sum(r.total_consumed for r in recs) / (
        recs[-1].end_time - recs[0].end_time
    )
    return {
        "track_io": track_io,
        "cycles": len(recs),
        "mean_cycle_ms": float(np.mean(cycle_gaps)) / 1000,
        "p95_cycle_ms": float(np.percentile(cycle_gaps, 95)) / 1000,
        "cpu_utilization": util,
    }


def test_io_accounting_ablation(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: [_run(True), _run(False)], rounds=1, iterations=1
    )
    on, off = results
    rows = [
        ["on (paper §2.4)", on["cycles"], round(on["mean_cycle_ms"], 1),
         round(on["p95_cycle_ms"], 1), f"{on['cpu_utilization']:.1%}"],
        ["off (ablated)", off["cycles"], round(off["mean_cycle_ms"], 1),
         round(off["p95_cycle_ms"], 1), f"{off['cpu_utilization']:.1%}"],
    ]
    emit(
        "ABLATION — blocked-process accounting (Fig 6 workload, I/O phase)",
        format_table(
            ["blocked accounting", "cycles", "mean cycle (ms)",
             "p95 cycle (ms)", "CPU utilisation"],
            rows,
        ),
    )
    write_csv(results_dir / "ablation_io_accounting.csv", results)

    # Without the heuristic, the blocked process inflates cycles and
    # wastes CPU that ALPS refuses to hand out.
    assert on["mean_cycle_ms"] < off["mean_cycle_ms"]
    assert on["cpu_utilization"] > off["cpu_utilization"]
