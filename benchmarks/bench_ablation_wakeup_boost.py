"""Ablation — the kernel's wakeup-priority boost.

ALPS's promptness rests on a classic UNIX mechanism: a process waking
from a voluntary sleep briefly runs at *kernel* sleep priority, so the
just-woken ALPS preempts user-mode work immediately instead of queueing
behind it (DESIGN.md, "key modelling decisions").  Ablating the boost
(waking at ordinary user priority) delays ALPS's samples behind freshly
resumed workload processes and accuracy collapses for skewed shares —
demonstrating that ALPS exploits, rather than merely tolerates, the
kernel's scheduling of interactive processes.
"""

import pytest

from benchmarks.conftest import emit
from repro.alps.config import AlpsConfig
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.experiments.common import run_for_cycles
from repro.kernel.kconfig import KernelConfig
from repro.metrics.accuracy import mean_rms_relative_error
from repro.units import ms
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.shares import ShareDistribution, workload_shares


def _error(model: ShareDistribution, n: int, *, boost: bool) -> float:
    kcfg = (
        KernelConfig()
        if boost
        # Waking processes get no special priority: they enqueue at
        # their ordinary decay-usage user priority.
        else KernelConfig(sleep_priority=KernelConfig().maxpri)
    )
    cw = build_controlled_workload(
        workload_shares(model, n),
        AlpsConfig(quantum_us=ms(10)),
        seed=0,
        kernel_config=kcfg,
    )
    run_for_cycles(cw, 45)
    return mean_rms_relative_error(cw.agent.cycle_log, skip=5)


def test_wakeup_boost_ablation(benchmark, results_dir):
    cases = [
        (ShareDistribution.SKEWED, 5),
        (ShareDistribution.SKEWED, 20),
        (ShareDistribution.EQUAL, 10),
    ]

    def sweep():
        return [
            (
                model,
                n,
                _error(model, n, boost=True),
                _error(model, n, boost=False),
            )
            for model, n in cases
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [f"{model.value}{n}", round(with_boost, 2), round(without, 2)]
        for model, n, with_boost, without in results
    ]
    emit(
        "ABLATION — tsleep wakeup-priority boost (RMS error %, Q = 10 ms)",
        format_table(["workload", "with boost", "without boost"], rows),
    )
    write_csv(
        results_dir / "ablation_wakeup_boost.csv",
        [
            {
                "workload": f"{model.value}{n}",
                "error_with_boost_pct": wb,
                "error_without_boost_pct": wo,
            }
            for model, n, wb, wo in results
        ],
    )

    # Skewed workloads depend on prompt sampling of freshly resumed
    # 1-share processes: errors must blow up without the boost.
    for model, n, with_boost, without in results:
        if model is ShareDistribution.SKEWED:
            assert without > 2.0 * with_boost
