"""Ablation — share scaling and the fairness horizon.

Section 2.1 defines the cycle as S·Q "assuming the shares have been
scaled by their greatest common divisor", while the evaluation
deliberately does *not* rescale (equal20 runs with 20 shares each, a
400-quantum cycle).  Scaling changes no target proportion — only how
much CPU time one cycle spans, i.e. the horizon over which fairness is
guaranteed and the pace at which errors are corrected.

This bench runs the same equal-share workload with shares {n, …} vs
the GCD-scaled {1, …} and compares cycle length, per-cycle error, and
ALPS overhead.
"""

import pytest

from benchmarks.conftest import emit
from repro.alps.config import AlpsConfig
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.experiments.common import run_for_cycles
from repro.metrics.accuracy import mean_rms_relative_error
from repro.units import SEC, ms, sec
from repro.workloads.scenarios import build_controlled_workload


def _run(per_process_share: int, n: int = 10, horizon_s: float = 60.0):
    cw = build_controlled_workload(
        [per_process_share] * n, AlpsConfig(quantum_us=ms(10)), seed=0
    )
    cw.engine.run_until(sec(horizon_s))
    log = cw.agent.cycle_log
    err = mean_rms_relative_error(log, skip=3)
    cycle_ms = per_process_share * n * 10
    return {
        "share": per_process_share,
        "cycle_ms": cycle_ms,
        "cycles": len(log),
        "error_pct": err,
        "overhead_pct": 100 * cw.overhead_fraction(),
        "reads": cw.agent.reads,
    }


def test_share_scaling_ablation(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: [_run(s) for s in (1, 2, 5, 10, 20)], rounds=1, iterations=1
    )
    rows = [
        [r["share"], r["cycle_ms"], r["cycles"],
         round(r["error_pct"], 2), round(r["overhead_pct"], 3), r["reads"]]
        for r in results
    ]
    emit(
        "ABLATION — share scaling (equal shares × 10 procs, Q = 10 ms)",
        format_table(
            ["share/proc", "cycle (ms)", "cycles done",
             "per-cycle err %", "overhead %", "reads"],
            rows,
        )
        + "\n\nproportions are identical in every row; larger raw shares "
        "mean longer cycles (a longer fairness horizon) and cheaper "
        "scheduling (reads are postponed further).",
    )
    write_csv(results_dir / "ablation_share_scaling.csv", results)

    by_share = {r["share"]: r for r in results}
    # Cycle length scales linearly with the raw share size.
    assert by_share[20]["cycle_ms"] == 20 * by_share[1]["cycle_ms"]
    # Bigger allowances let measurement postponement defer more reads.
    assert by_share[20]["reads"] < by_share[1]["reads"]
    assert by_share[20]["overhead_pct"] < by_share[1]["overhead_pct"]
    # Per-cycle error improves monotonically with longer cycles (one
    # quantum of slop amortised over more entitlement) and is already
    # small at the Table 2 scale (10 shares/process).
    errors = [r["error_pct"] for r in results]
    assert all(a > b for a, b in zip(errors, errors[1:]))
    assert by_share[10]["error_pct"] < 5.0
