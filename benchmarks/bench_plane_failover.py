"""Plane failover — a dead cell's tenants keep their proportions.

The claim from docs/share_tree.md ("Plane fault tolerance"), gated
here: when a cell exhausts its restart budget and the plane re-homes
its subtrees onto survivors, the *post-failover* fairness of the whole
plane stays within ``REPRO_PLANE_MAX_ERROR`` percentage points of a
never-crashed control run measured over the same settle window, and
the re-home itself lands within ``REPRO_PLANE_MAX_REHOME_US`` virtual
µs of the cell's death (one controller tick, not an outage).

Both arms run the same tree, seed, and control-step cadence; the only
difference is the crash schedule, so the gap is the cost of failover
alone.
"""

import os

from benchmarks.conftest import emit
from repro.alps.config import AlpsConfig
from repro.analysis.export import write_csv
from repro.faults.plan import CellCrash, FaultPlan
from repro.resilience.chaos import (
    plane_attained_error_pct,
    plane_episode_tree,
)
from repro.resilience.supervisor import RestartPolicy
from repro.sharetree import ShardedAlpsPlane
from repro.sharetree.resilience import PlaneResilienceConfig
from repro.units import ms, sec

#: Max post-failover fairness penalty vs the never-crashed run
#: (percentage points of worst per-cell renormalised deviation).
MAX_ERROR_PCT = float(os.environ.get("REPRO_PLANE_MAX_ERROR", "10.0"))
#: Max virtual time from cell death to its subtrees landing on
#: survivors.  One control step is 250 ms; the default allows two.
MAX_REHOME_US = int(os.environ.get("REPRO_PLANE_MAX_REHOME_US", str(ms(500))))

CELLS = 3
RESTART_BUDGET = 2
STEP_US = ms(250)
#: Crash storm start / spacing: the third crash exhausts the budget.
CRASH_AT_US = sec(2)
CRASH_SPACING_US = ms(200)
#: Fairness is measured over the settle window, well past failover.
SETTLE_US = sec(6)
HORIZON_US = sec(12)


def _run_arm(crash: bool):
    """One plane run; returns (plane, settle-window error pct)."""
    plan = FaultPlan(
        cell_crashes=tuple(
            CellCrash(time_us=CRASH_AT_US + i * CRASH_SPACING_US, cell=0)
            for i in range(RESTART_BUDGET + 1)
        )
        if crash
        else ()
    )
    plane = ShardedAlpsPlane(
        plane_episode_tree(),
        AlpsConfig(quantum_us=ms(10)),
        cells=CELLS,
        seed=0,
        resilience=PlaneResilienceConfig(
            policy=RestartPolicy(restart_budget=RESTART_BUDGET),
            plan=plan,
        ),
    )
    now = 0
    while now < SETTLE_US:
        now += STEP_US
        plane.run_until(now)
    kapi = plane.kernel.kapi
    baseline = {
        sid: kapi.getrusage(proc.pid)
        for sid, proc in plane.workers.items()
    }
    while now < HORIZON_US:
        now += STEP_US
        plane.run_until(now)
    return plane, plane_attained_error_pct(plane, baseline=baseline)


def test_plane_failover_fairness_and_rehome_latency(results_dir):
    control, control_err = _run_arm(crash=False)
    crashed, crashed_err = _run_arm(crash=True)
    res = crashed.resilience
    assert res is not None

    # Failover actually happened: cell 0 stood down and was re-homed.
    assert res.dead_cells == frozenset({0}), (
        f"expected cell 0 dead, got {sorted(res.dead_cells)}"
    )
    assert res.rehomes >= 1 and res.rehomed_leaves >= 1
    assert not any(
        agent.subjects
        for cell, agent in crashed.agents.items()
        if cell in res.dead_cells
    ), "dead cell still owns subjects"

    died_at = res.health[0].died_at_us
    rehomed_at = res.health[0].rehomed_at_us
    assert died_at is not None and rehomed_at is not None
    latency_us = rehomed_at - died_at

    penalty = crashed_err - control_err
    emit(
        "PLANE FAILOVER — post-failover fairness and re-home latency",
        f"settle-window error: control {control_err:.2f}% vs "
        f"failover {crashed_err:.2f}% -> penalty {penalty:+.2f} pct-pts "
        f"(gate {MAX_ERROR_PCT:.1f})\n"
        f"re-home latency: {latency_us} virtual us "
        f"(gate {MAX_REHOME_US}); restarts={res.cell_restarts} "
        f"rehomed_leaves={res.rehomed_leaves}",
    )
    write_csv(
        results_dir / "plane_failover.csv",
        [
            {
                "control_err_pct": control_err,
                "failover_err_pct": crashed_err,
                "penalty_pct": penalty,
                "rehome_latency_us": latency_us,
                "rehomed_leaves": res.rehomed_leaves,
                "cell_restarts": res.cell_restarts,
            }
        ],
    )

    assert penalty <= MAX_ERROR_PCT, (
        f"post-failover fairness error {crashed_err:.2f}% exceeds the "
        f"never-crashed run's {control_err:.2f}% by {penalty:.2f} "
        f"pct-pts, over the REPRO_PLANE_MAX_ERROR={MAX_ERROR_PCT} gate"
    )
    assert latency_us <= MAX_REHOME_US, (
        f"re-home took {latency_us} virtual us after cell death, over "
        f"the REPRO_PLANE_MAX_REHOME_US={MAX_REHOME_US} gate"
    )
