"""Figure 5 — Overhead: fraction of time ALPS executes vs experiment
duration, across the Table 2 workloads at Q ∈ {10, 20, 40} ms.

Reproduction targets: overhead well under 1 % (paper: typically under
0.3 %), highest for equal-share distributions, growing as the quantum
shrinks and as the process count grows.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.ascii_plot import ascii_series_plot
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.experiments.overhead import overhead_sweep
from repro.workloads.shares import ShareDistribution

SIZES = (5, 10, 15, 20)
QUANTA_MS = (10, 20, 40)


def test_figure5_overhead_sweep(benchmark, results_dir):
    points = benchmark.pedantic(
        lambda: overhead_sweep(sizes=SIZES, quanta_ms=QUANTA_MS, cycles=40),
        rounds=1,
        iterations=1,
    )

    series = {}
    rows = []
    for p in points:
        key = f"{p.model.value},{int(p.quantum_ms)}ms"
        xs, ys = series.setdefault(key, ([], []))
        xs.append(p.n)
        ys.append(p.overhead_pct)
        rows.append(
            [
                p.model.value,
                p.n,
                p.quantum_ms,
                round(p.overhead_pct, 3),
                p.invocations,
                p.reads,
            ]
        )
    emit(
        "FIGURE 5 — Overhead (%) vs number of processes",
        format_table(
            ["model", "N", "Q (ms)", "overhead %", "invocations", "reads"], rows
        )
        + "\n\n"
        + ascii_series_plot(
            series, title="overhead % vs N", xlabel="N", ylabel="overhead %"
        ),
    )
    write_csv(
        results_dir / "fig5_overhead.csv",
        [
            {
                "model": p.model.value,
                "n": p.n,
                "quantum_ms": p.quantum_ms,
                "overhead_pct": p.overhead_pct,
                "invocations": p.invocations,
                "reads": p.reads,
            }
            for p in points
        ],
    )

    ov = {(p.model, p.n, p.quantum_ms): p.overhead_pct for p in points}
    # All cells under 1 % (paper: "in general, overhead is very low").
    assert all(v < 1.0 for v in ov.values())
    # Smaller quantum costs more, for every model at N=20.
    for model in ShareDistribution:
        assert ov[(model, 20, 10)] > ov[(model, 20, 40)]
    # Equal is the costliest model at N=20 (fewest early suspensions).
    for q in QUANTA_MS:
        assert ov[(ShareDistribution.EQUAL, 20, q)] >= max(
            ov[(ShareDistribution.SKEWED, 20, q)],
            ov[(ShareDistribution.LINEAR, 20, q)],
        )
    # Overhead grows with N at Q=10 for equal/linear; skewed is nearly
    # flat (most of its processes are suspended most of the time, so
    # the measured set barely grows with N).
    for model in (ShareDistribution.EQUAL, ShareDistribution.LINEAR):
        assert ov[(model, 20, 10)] > ov[(model, 5, 10)]
    assert ov[(ShareDistribution.SKEWED, 20, 10)] > 0.5 * ov[
        (ShareDistribution.SKEWED, 5, 10)
    ]
