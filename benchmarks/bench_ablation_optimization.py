"""Ablation (§2.3 / §3.2) — the measurement-postponement optimization.

The paper: "this optimization reduces overhead by a factor of at least
1.8 and as much as 5.9, for the workloads that we tested."  This bench
runs the Table 2 workloads at Q = 10 ms with the optimization on and
off and reports the per-workload reduction factors.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.experiments.overhead import run_overhead_point
from repro.metrics.accuracy import mean_rms_relative_error
from repro.workloads.shares import DISTRIBUTIONS

SIZES = (5, 10, 20)


def _sweep():
    out = []
    for model in DISTRIBUTIONS:
        for n in SIZES:
            opt = run_overhead_point(model, n, 10, cycles=40, optimized=True)
            unopt = run_overhead_point(model, n, 10, cycles=40, optimized=False)
            out.append((model, n, opt, unopt))
    return out


def test_optimization_ablation(benchmark, results_dir):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    factors = []
    for model, n, opt, unopt in results:
        factor = unopt.overhead_pct / opt.overhead_pct
        read_factor = unopt.reads / max(opt.reads, 1)
        factors.append(factor)
        rows.append(
            [
                f"{model.value}{n}",
                round(unopt.overhead_pct, 3),
                round(opt.overhead_pct, 3),
                round(factor, 2),
                round(read_factor, 2),
            ]
        )
    emit(
        "ABLATION — measurement postponement (Q = 10 ms)",
        format_table(
            [
                "workload",
                "unoptimized ovh %",
                "optimized ovh %",
                "overhead factor",
                "reads factor",
            ],
            rows,
        )
        + "\n\npaper: overhead reduced by 1.8×–5.9× across workloads",
    )
    write_csv(
        results_dir / "ablation_optimization.csv",
        [
            {
                "workload": f"{model.value}{n}",
                "unoptimized_pct": unopt.overhead_pct,
                "optimized_pct": opt.overhead_pct,
                "factor": unopt.overhead_pct / opt.overhead_pct,
            }
            for model, n, opt, unopt in results
        ],
    )

    # Every workload benefits; the band overlaps the paper's 1.8–5.9×.
    assert all(f > 1.2 for f in factors)
    assert max(factors) > 1.8
