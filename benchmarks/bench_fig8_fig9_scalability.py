"""Figures 8/9 + Section 4.2 — scalability and the breakdown threshold.

Equal-share workloads (5 shares/process) growing until ALPS loses
control, at Q ∈ {10, 20, 40} ms.  Reproduction targets: overhead rises
linearly then flattens below ~2.5 %; error is low until a knee; knees
are ordered Q=10 < Q=20 < Q=40; the analytic prediction
``U_Q(N*) = 100/(N*+1)`` lands near the observed knee (paper: predicted
39/54/75, observed 40/60/90).
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.ascii_plot import ascii_series_plot
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.experiments.scalability import analyze_breakdown, scalability_sweep

SIZES = (5, 10, 20, 30, 40, 50, 60, 80, 100, 120)
QUANTA_MS = (10, 20, 40)


def test_figures8_9_scalability(benchmark, results_dir):
    points = benchmark.pedantic(
        lambda: scalability_sweep(
            sizes=SIZES, quanta_ms=QUANTA_MS, cycles=25, max_wall_s=180.0
        ),
        rounds=1,
        iterations=1,
    )

    ov_series, err_series = {}, {}
    rows = []
    for p in points:
        key = f"{int(p.quantum_ms)} ms quantum"
        xs, ys = ov_series.setdefault(key, ([], []))
        xs.append(p.n)
        ys.append(p.overhead_pct)
        xs2, ys2 = err_series.setdefault(key, ([], []))
        xs2.append(p.n)
        ys2.append(min(p.mean_rms_error_pct, 70.0))
        rows.append(
            [
                p.n,
                p.quantum_ms,
                round(p.overhead_pct, 3),
                round(p.mean_rms_error_pct, 1),
                p.cycles_completed,
            ]
        )
    emit(
        "FIGURE 8 — Overhead (%) for equal-share workload vs N",
        format_table(["N", "Q (ms)", "overhead %", "rms err %", "cycles"], rows)
        + "\n\n"
        + ascii_series_plot(ov_series, title="overhead % vs N", xlabel="N"),
    )
    emit(
        "FIGURE 9 — Mean RMS relative error (%) vs N (clipped at 70)",
        ascii_series_plot(err_series, title="error % vs N", xlabel="N"),
    )

    analyses = analyze_breakdown(points)
    arow = []
    for a in analyses:
        paper_fit = {10: (0.0639, 0.0604), 20: (0.0338, 0.0340), 40: (0.0172, 0.0160)}
        paper_pred = {10: 39, 20: 54, 40: 75}
        paper_obs = {10: 40, 20: 60, 40: 90}
        arow.append(
            [
                a.quantum_ms,
                f"{a.fit.slope:.4f}N + {a.fit.intercept:.4f}",
                f"{paper_fit[int(a.quantum_ms)][0]}N + {paper_fit[int(a.quantum_ms)][1]}",
                round(a.predicted_n),
                paper_pred[int(a.quantum_ms)],
                a.observed_n,
                paper_obs[int(a.quantum_ms)],
            ]
        )
    emit(
        "SECTION 4.2 — Breakdown thresholds",
        format_table(
            [
                "Q (ms)", "U_Q(N) fit", "paper fit",
                "predicted N*", "paper pred.", "observed N*", "paper obs.",
            ],
            arow,
        ),
    )
    write_csv(
        results_dir / "fig8_fig9_scalability.csv",
        [
            {
                "n": p.n,
                "quantum_ms": p.quantum_ms,
                "overhead_pct": p.overhead_pct,
                "mean_rms_error_pct": p.mean_rms_error_pct,
                "cycles_completed": p.cycles_completed,
            }
            for p in points
        ],
    )

    # Shape assertions.
    ov = {(p.quantum_ms, p.n): p.overhead_pct for p in points}
    err = {(p.quantum_ms, p.n): p.mean_rms_error_pct for p in points}
    assert all(v < 3.0 for v in ov.values())  # paper: <= 2.5 %
    # Low error before the knee, explosion after, for Q=10.
    assert err[(10, 10)] < 12.0
    assert err[(10, 80)] > 25.0
    # Knees ordered by quantum: at N=60, Q=10 is broken, Q=40 is not.
    assert err[(10, 60)] > err[(40, 60)]
    # Predicted thresholds ordered and in plausible bands.
    by_q = {a.quantum_ms: a for a in analyses}
    assert by_q[10].predicted_n < by_q[20].predicted_n < by_q[40].predicted_n
    assert 20 <= by_q[10].predicted_n <= 70
