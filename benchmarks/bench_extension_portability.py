"""Extension — portability: the same ALPS on two kernel policies.

The paper positions ALPS as portable across UNIX kernels because it
relies only on progress sampling and job-control signals, "allowing and
indeed expecting [the kernel scheduler] to do as much work as it can".
This bench runs the identical agent on the 4.4BSD decay-usage kernel
and on the CFS-like fair kernel and compares accuracy and overhead —
the shape claim is that both land in the paper's envelope (< ~5 % error
for non-skewed workloads, < 1 % overhead).
"""

import pytest

from benchmarks.conftest import emit
from repro.alps.config import AlpsConfig
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.experiments.common import run_for_cycles
from repro.kernel.cfs import CfsKernel
from repro.kernel.kernel import Kernel
from repro.metrics.accuracy import mean_rms_relative_error
from repro.units import ms
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.shares import ShareDistribution, workload_shares

CASES = [
    (ShareDistribution.EQUAL, 10),
    (ShareDistribution.LINEAR, 10),
    (ShareDistribution.SKEWED, 5),
]


def _run(model, n, factory):
    cw = build_controlled_workload(
        workload_shares(model, n),
        AlpsConfig(quantum_us=ms(10)),
        seed=0,
        kernel_factory=factory,
    )
    run_for_cycles(cw, 50)
    err = mean_rms_relative_error(cw.agent.cycle_log, skip=5)
    return err, 100 * cw.overhead_fraction()


def test_portability_extension(benchmark, results_dir):
    def sweep():
        out = []
        for model, n in CASES:
            bsd = _run(model, n, Kernel)
            cfs = _run(model, n, CfsKernel)
            out.append((model, n, bsd, cfs))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [
            f"{model.value}{n}",
            round(bsd[0], 2), round(bsd[1], 3),
            round(cfs[0], 2), round(cfs[1], 3),
        ]
        for model, n, bsd, cfs in results
    ]
    emit(
        "EXTENSION — same ALPS agent on two kernel policies (Q = 10 ms)",
        format_table(
            ["workload",
             "BSD err %", "BSD ovh %",
             "CFS err %", "CFS ovh %"],
            rows,
        ),
    )
    write_csv(
        results_dir / "extension_portability.csv",
        [
            {
                "workload": f"{model.value}{n}",
                "bsd_err_pct": bsd[0], "bsd_ovh_pct": bsd[1],
                "cfs_err_pct": cfs[0], "cfs_ovh_pct": cfs[1],
            }
            for model, n, bsd, cfs in results
        ],
    )

    for model, n, bsd, cfs in results:
        assert cfs[0] < 12.0  # accurate on the foreign policy too
        assert cfs[1] < 1.0
        assert bsd[1] < 1.0
